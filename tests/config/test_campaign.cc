/**
 * @file
 * Fault-campaign runner tests: byte-identical replay of the same
 * (seed, faults) campaign, the positive run (reliable transport keeps
 * every system clean over a lossy fabric), and the negative control
 * (without the transport the same campaign must fail — proving the
 * fault injection has teeth). Also guards the fault-off hot path:
 * a machine built without faults carries none of the robustness
 * machinery.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "config/campaign.hh"

namespace tt
{
namespace
{

FaultParams
mix()
{
    FaultParams p;
    p.drop = 0.02;
    p.dup = 0.02;
    p.reorder = 0.05;
    p.seed = 20260807;
    return p;
}

CampaignConfig
smallCampaign()
{
    CampaignConfig cc;
    cc.base.core.nodes = 8;
    cc.base.faults = mix();
    cc.systems = {"stache"};
    cc.runs = 2;
    cc.app = "em3d";
    cc.dataset = DataSet::Tiny;
    cc.scale = 4;
    cc.progress = false;
    return cc;
}

std::string
serialize(const CampaignReport& rep)
{
    std::ostringstream os;
    rep.writeJson(os);
    return os.str();
}

TEST(Campaign, SeedDerivationIsPureAndDecorrelated)
{
    EXPECT_EQ(campaignSeed(7, 0), campaignSeed(7, 0));
    EXPECT_NE(campaignSeed(7, 0), campaignSeed(7, 1));
    EXPECT_NE(campaignSeed(7, 0), campaignSeed(8, 0));
}

TEST(Campaign, ReliableTransportKeepsLossyCampaignClean)
{
    const CampaignConfig cc = smallCampaign();
    const CampaignReport rep = runCampaign(cc);
    ASSERT_EQ(rep.runs.size(), 2u);
    EXPECT_TRUE(rep.allOk()) << serialize(rep);
    // The fabric really was lossy and the transport really worked.
    std::uint64_t faults = 0, retx = 0;
    for (const auto& r : rep.runs) {
        faults += r.faultsInjected;
        retx += r.retransmits;
        EXPECT_EQ(r.violations, 0u);
        EXPECT_EQ(r.watchdogTrips, 0u);
    }
    EXPECT_GT(faults, 0u);
    EXPECT_GT(retx, 0u);
}

TEST(Campaign, SameSeedCampaignIsByteIdentical)
{
    const CampaignConfig cc = smallCampaign();
    CampaignReport a = runCampaign(cc);
    CampaignReport b = runCampaign(cc);
    a.faultSpec = b.faultSpec = "test-mix";
    EXPECT_EQ(serialize(a), serialize(b));
}

TEST(Campaign, NegativeControlFailsWithoutReliableTransport)
{
    CampaignConfig cc = smallCampaign();
    cc.base.reliable.enable = false;
    // Tighten the horizon so a wedged run is detected quickly.
    cc.base.watchdog.horizon = 20'000;
    const CampaignReport rep = runCampaign(cc);
    ASSERT_EQ(rep.runs.size(), 2u);
    // Dropped protocol messages with nobody retransmitting must
    // surface as watchdog trips, deadlock panics, or checker
    // violations — never a clean pass.
    EXPECT_FALSE(rep.allOk()) << serialize(rep);
    for (const auto& r : rep.runs)
        EXPECT_NE(r.outcome, "ok") << serialize(rep);
}

TEST(Campaign, FaultFreeBuildCarriesNoRobustnessMachinery)
{
    MachineConfig cfg;
    cfg.core.nodes = 8;
    TargetMachine t = buildTyphoonStache(cfg);
    EXPECT_EQ(t.faults, nullptr);
    EXPECT_EQ(t.transport, nullptr);
    EXPECT_EQ(t.watchdog, nullptr);
    auto app = makeWorkload("em3d", DataSet::Tiny, 4);
    t.run(*app);
    // No transport/fault counters may even exist in a fault-off run:
    // the stats dump is part of the bit-identical seed output.
    const StatSet& stats = t.machine->stats();
    EXPECT_FALSE(stats.hasCounter("net.retransmits"));
    EXPECT_FALSE(stats.hasCounter("net.acks"));
    EXPECT_FALSE(stats.hasCounter("net.faults.drops"));
    EXPECT_FALSE(stats.hasCounter("obs.watchdog.trips"));
}

} // namespace
} // namespace tt
