/**
 * @file
 * Fault-campaign runner tests: byte-identical replay of the same
 * (seed, faults) campaign, the positive run (reliable transport keeps
 * every system clean over a lossy fabric), and the negative control
 * (without the transport the same campaign must fail — proving the
 * fault injection has teeth). Also guards the fault-off hot path:
 * a machine built without faults carries none of the robustness
 * machinery.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "config/campaign.hh"

namespace tt
{
namespace
{

FaultParams
mix()
{
    FaultParams p;
    p.drop = 0.02;
    p.dup = 0.02;
    p.reorder = 0.05;
    p.seed = 20260807;
    return p;
}

CampaignConfig
smallCampaign()
{
    CampaignConfig cc;
    cc.base.core.nodes = 8;
    cc.base.faults = mix();
    cc.systems = {"stache"};
    cc.runs = 2;
    cc.app = "em3d";
    cc.dataset = DataSet::Tiny;
    cc.scale = 4;
    cc.progress = false;
    return cc;
}

std::string
serialize(const CampaignReport& rep)
{
    std::ostringstream os;
    rep.writeJson(os);
    return os.str();
}

TEST(Campaign, SeedDerivationIsPureAndDecorrelated)
{
    EXPECT_EQ(campaignSeed(7, 0), campaignSeed(7, 0));
    EXPECT_NE(campaignSeed(7, 0), campaignSeed(7, 1));
    EXPECT_NE(campaignSeed(7, 0), campaignSeed(8, 0));
}

TEST(Campaign, ReliableTransportKeepsLossyCampaignClean)
{
    const CampaignConfig cc = smallCampaign();
    const CampaignReport rep = runCampaign(cc);
    ASSERT_EQ(rep.runs.size(), 2u);
    EXPECT_TRUE(rep.allOk()) << serialize(rep);
    // The fabric really was lossy and the transport really worked.
    std::uint64_t faults = 0, retx = 0;
    for (const auto& r : rep.runs) {
        faults += r.faultsInjected;
        retx += r.retransmits;
        EXPECT_EQ(r.violations, 0u);
        EXPECT_EQ(r.watchdogTrips, 0u);
    }
    EXPECT_GT(faults, 0u);
    EXPECT_GT(retx, 0u);
}

TEST(Campaign, SameSeedCampaignIsByteIdentical)
{
    const CampaignConfig cc = smallCampaign();
    CampaignReport a = runCampaign(cc);
    CampaignReport b = runCampaign(cc);
    a.faultSpec = b.faultSpec = "test-mix";
    EXPECT_EQ(serialize(a), serialize(b));
}

TEST(Campaign, ShardUnionEqualsUnshardedCampaign)
{
    // --campaign-shard=I/N: seeds derive from the run index, never
    // the shard, so the union of the N shard reports must be exactly
    // the unsharded report, run for run.
    CampaignConfig cc = smallCampaign();
    cc.runs = 4;
    const CampaignReport whole = runCampaign(cc);
    ASSERT_EQ(whole.runs.size(), 4u);

    std::vector<CampaignRun> merged;
    for (int shard = 0; shard < 2; ++shard) {
        CampaignConfig part = cc;
        part.shardIndex = shard;
        part.shardCount = 2;
        const CampaignReport rep = runCampaign(part);
        EXPECT_EQ(rep.shardIndex, shard);
        EXPECT_EQ(rep.shardCount, 2);
        EXPECT_EQ(rep.runs.size(), 2u);
        for (const CampaignRun& r : rep.runs) {
            EXPECT_EQ(r.index % 2, shard);
            merged.push_back(r);
        }
    }
    std::sort(merged.begin(), merged.end(),
              [](const CampaignRun& a, const CampaignRun& b) {
                  return a.index < b.index;
              });
    ASSERT_EQ(merged.size(), whole.runs.size());
    for (std::size_t i = 0; i < merged.size(); ++i) {
        const CampaignRun& m = merged[i];
        const CampaignRun& w = whole.runs[i];
        EXPECT_EQ(m.index, w.index);
        EXPECT_EQ(m.system, w.system);
        EXPECT_EQ(m.seed, w.seed);
        EXPECT_EQ(m.outcome, w.outcome);
        EXPECT_EQ(m.cycles, w.cycles);
        EXPECT_EQ(m.checksum, w.checksum);
        EXPECT_EQ(m.faultsInjected, w.faultsInjected);
        EXPECT_EQ(m.retransmits, w.retransmits);
        EXPECT_EQ(m.violations, w.violations);
    }
}

TEST(Campaign, CrashCampaignSurvivesAndCountsRecoveries)
{
    // A crash-stop failure in every run of a lossy campaign: all runs
    // must still come back ok, with the recovery tally in the report.
    CampaignConfig cc = smallCampaign();
    cc.base.faults.crashes.emplace_back(30'000, 3);
    const CampaignReport rep = runCampaign(cc);
    ASSERT_EQ(rep.runs.size(), 2u);
    EXPECT_TRUE(rep.allOk()) << serialize(rep);
    for (const auto& r : rep.runs) {
        EXPECT_EQ(r.crashesInjected, 1u);
        EXPECT_EQ(r.recoveries, 1u);
        EXPECT_EQ(r.violations, 0u);
    }
    const std::string json = serialize(rep);
    EXPECT_NE(json.find("\"recovery\""), std::string::npos);
    EXPECT_NE(json.find("\"crashes_survived\""), std::string::npos);
}

TEST(Campaign, NegativeControlFailsWithoutReliableTransport)
{
    CampaignConfig cc = smallCampaign();
    cc.base.reliable.enable = false;
    // Tighten the horizon so a wedged run is detected quickly.
    cc.base.watchdog.horizon = 20'000;
    const CampaignReport rep = runCampaign(cc);
    ASSERT_EQ(rep.runs.size(), 2u);
    // Dropped protocol messages with nobody retransmitting must
    // surface as watchdog trips, deadlock panics, or checker
    // violations — never a clean pass.
    EXPECT_FALSE(rep.allOk()) << serialize(rep);
    for (const auto& r : rep.runs)
        EXPECT_NE(r.outcome, "ok") << serialize(rep);
}

TEST(Campaign, FaultFreeBuildCarriesNoRobustnessMachinery)
{
    MachineConfig cfg;
    cfg.core.nodes = 8;
    TargetMachine t = buildTyphoonStache(cfg);
    EXPECT_EQ(t.faults, nullptr);
    EXPECT_EQ(t.transport, nullptr);
    EXPECT_EQ(t.watchdog, nullptr);
    auto app = makeWorkload("em3d", DataSet::Tiny, 4);
    t.run(*app);
    // No transport/fault counters may even exist in a fault-off run:
    // the stats dump is part of the bit-identical seed output.
    const StatSet& stats = t.machine->stats();
    EXPECT_FALSE(stats.hasCounter("net.retransmits"));
    EXPECT_FALSE(stats.hasCounter("net.acks"));
    EXPECT_FALSE(stats.hasCounter("net.faults.drops"));
    EXPECT_FALSE(stats.hasCounter("obs.watchdog.trips"));
}

} // namespace
} // namespace tt
