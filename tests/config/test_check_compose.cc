/**
 * @file
 * Composition of --check with the rest of the configuration surface:
 * the sanitizer forces the serial engine when --threads=N asks for
 * the parallel one (with identical simulated results), and the
 * checker-mode knob reaches the constructed ProtocolChecker.
 */

#include <gtest/gtest.h>

#include "config/builders.hh"
#include "tests/helpers.hh"

namespace tt
{
namespace
{

Task<void>
pingPong(Cpu& cpu, Addr a)
{
    co_await cpu.write<int>(a + cpu.id() * 64, cpu.id());
    int v = co_await cpu.read<int>(a + cpu.id() * 64);
    EXPECT_EQ(v, cpu.id());
}

TEST(CheckCompose, CheckForcesTheSerialEngine)
{
    MachineConfig cfg;
    cfg.core.nodes = 4;
    cfg.core.threads = 4;
    cfg.check.enable = true;
    TargetMachine t = buildTyphoonStache(cfg);
    // The parallel engine must not have been built: checked runs use
    // the serial cross-check engine (with a logged notice).
    EXPECT_EQ(t.machine->engine(), nullptr);
    ASSERT_NE(t.checker, nullptr);

    Addr a = t.m().memsys().shmalloc(4096, 0);
    test::FnApp app(
        [a](Cpu& cpu) -> Task<void> { return pingPong(cpu, a); });
    const RunResult r = t.run(app);
    EXPECT_GT(r.execTime, 0u);
    t.checker->finalize();
    EXPECT_TRUE(t.checker->violations().empty())
        << t.checker->report();
}

TEST(CheckCompose, SerialResultsMatchTheForcedSerialRun)
{
    // threads=4 + check must give the same simulated time as a plain
    // serial checked run (it IS a serial run).
    RunResult r[2];
    for (int i = 0; i < 2; ++i) {
        MachineConfig cfg;
        cfg.core.nodes = 4;
        cfg.core.threads = i == 0 ? 1 : 4;
        cfg.check.enable = true;
        TargetMachine t = buildTyphoonStache(cfg);
        Addr a = t.m().memsys().shmalloc(4096, 0);
        test::FnApp app(
            [a](Cpu& cpu) -> Task<void> { return pingPong(cpu, a); });
        r[i] = t.run(app);
    }
    EXPECT_EQ(r[0].execTime, r[1].execTime);
    EXPECT_EQ(r[0].events, r[1].events);
}

TEST(CheckCompose, ThreadsWithoutCheckStillGoParallel)
{
    MachineConfig cfg;
    cfg.core.nodes = 4;
    cfg.core.threads = 4;
    TargetMachine t = buildTyphoonStache(cfg);
    EXPECT_NE(t.machine->engine(), nullptr);
    EXPECT_EQ(t.checker, nullptr);
}

TEST(CheckCompose, ModeKnobReachesTheChecker)
{
    MachineConfig cfg;
    cfg.core.nodes = 2;
    cfg.check.enable = true;
    cfg.check.mode = ProtocolChecker::Mode::Paranoid;
    TargetMachine t = buildDirNNB(cfg);
    ASSERT_NE(t.checker, nullptr);
    EXPECT_EQ(t.checker->mode(), ProtocolChecker::Mode::Paranoid);

    cfg.check.mode = ProtocolChecker::Mode::Fast;
    TargetMachine t2 = buildTyphoonStache(cfg);
    ASSERT_NE(t2.checker, nullptr);
    EXPECT_EQ(t2.checker->mode(), ProtocolChecker::Mode::Fast);
}

} // namespace
} // namespace tt
