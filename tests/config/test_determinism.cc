/**
 * @file
 * End-to-end determinism regression: a seeded workload must produce
 * bit-identical results (a) across repeated runs and (b) whether the
 * event queue runs its calendar fast path or the reference heap.
 * This is the guard that keeps performance work on the simulation
 * core from silently changing simulated behaviour.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "config/bench_harness.hh"
#include "config/builders.hh"
#include "sim/event_queue.hh"

namespace tt
{
namespace
{

struct RunRecord
{
    Tick cycles = 0;
    std::uint64_t events = 0;
    double checksum = 0;
    std::string stats;

    bool
    operator==(const RunRecord& o) const
    {
        return cycles == o.cycles && events == o.events &&
               checksum == o.checksum && stats == o.stats;
    }
};

RunRecord
runOnce(const std::string& system, const std::string& app)
{
    MachineConfig cfg;
    cfg.core.nodes = 8;

    TargetMachine target;
    if (system == "dirnnb")
        target = buildDirNNB(cfg);
    else if (system == "stache")
        target = buildTyphoonStache(cfg);
    else
        target = buildTyphoonMigratory(cfg);

    auto a = makeWorkload(app, DataSet::Tiny, 1);
    const RunResult r = target.run(*a);

    RunRecord rec;
    rec.cycles = r.execTime;
    rec.events = r.events;
    rec.checksum = a->checksum();
    std::ostringstream os;
    target.m().stats().dump(os);
    rec.stats = os.str();
    return rec;
}

class ReferenceHeapScope
{
  public:
    ReferenceHeapScope() : _saved(EventQueue::defaultMode())
    {
        EventQueue::setDefaultMode(EventQueue::Mode::ReferenceHeap);
    }
    ~ReferenceHeapScope() { EventQueue::setDefaultMode(_saved); }

  private:
    EventQueue::Mode _saved;
};

TEST(Determinism, RepeatedRunsAreBitIdentical)
{
    for (const char* system : {"dirnnb", "stache", "migratory"}) {
        for (const char* app : {"mp3d", "em3d"}) {
            const RunRecord a = runOnce(system, app);
            const RunRecord b = runOnce(system, app);
            EXPECT_EQ(a, b) << system << "/" << app;
        }
    }
}

TEST(Determinism, CalendarQueueMatchesReferenceHeap)
{
    for (const char* system : {"dirnnb", "stache"}) {
        for (const char* app : {"mp3d", "em3d"}) {
            const RunRecord cal = runOnce(system, app);
            RunRecord ref;
            {
                ReferenceHeapScope scope;
                ref = runOnce(system, app);
            }
            EXPECT_EQ(cal, ref) << system << "/" << app;
        }
    }
}

TEST(Determinism, BenchHarnessReportsSimulatedResultsFaithfully)
{
    // The wall-clock harness must not perturb simulation: its cycles
    // and checksum equal a plain run's.
    const RunRecord plain = runOnce("stache", "mp3d");
    MachineConfig cfg;
    cfg.core.nodes = 8;
    const BenchCase c =
        runBenchCase("stache", "mp3d", DataSet::Tiny, 1, cfg);
    EXPECT_EQ(c.cycles, plain.cycles);
    EXPECT_EQ(c.events, plain.events);
    EXPECT_EQ(c.checksum, plain.checksum);
    EXPECT_GT(c.wallMs, 0.0);
}

} // namespace
} // namespace tt
