/**
 * @file
 * Parallel-engine acceptance tests (DESIGN.md §12): everything the
 * simulator emits — stats JSON, trace files, campaign reports,
 * perturbed runs — must be byte-identical between --threads=1 and
 * --threads=N on every target system; the watchdog must still trip
 * under threads; and the actor workload must hash identically through
 * the serial queue and the engine.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "config/actor_bench.hh"
#include "config/builders.hh"
#include "config/campaign.hh"
#include "sim/event_queue.hh"
#include "sim/watchdog.hh"

namespace tt
{
namespace
{

constexpr const char* kSystems[] = {"dirnnb", "stache", "migratory",
                                    "update"};

struct RunRec
{
    Tick cycles = 0;
    std::uint64_t events = 0;
    double checksum = 0;
    std::uint64_t deadLinks = 0;
    std::string statsJson;
    std::string trace;
};

std::string
slurpAndRemove(const std::string& path)
{
    std::ifstream f(path);
    std::ostringstream os;
    os << f.rdbuf();
    std::remove(path.c_str());
    return os.str();
}

/** Build @p system, run tiny em3d on it, capture all outputs. */
RunRec
runSystem(const std::string& system, int threads,
          MachineConfig cfg = {}, const std::string& traceFile = "")
{
    cfg.core.nodes = 8;
    cfg.core.threads = threads;
    if (!traceFile.empty()) {
        cfg.obs.enable = true;
        cfg.obs.traceFile = traceFile;
    }

    TargetMachine t;
    if (system == "dirnnb")
        t = buildDirNNB(cfg);
    else if (system == "stache")
        t = buildTyphoonStache(cfg);
    else if (system == "migratory")
        t = buildTyphoonMigratory(cfg);
    else
        t = buildTyphoonEm3dUpdate(cfg);

    std::unique_ptr<BenchApp> app;
    if (system == "update")
        app = std::make_unique<Em3dApp>(em3dParams(DataSet::Tiny, 0.2, 1),
                                        Em3dApp::Mode::Update, t.em3d);
    else
        app = makeWorkload("em3d", DataSet::Tiny, 1);

    const RunResult r = t.run(*app);
    if (t.obs)
        t.obs->finalize();

    RunRec rec;
    rec.cycles = r.execTime;
    rec.events = r.events;
    rec.checksum = app->checksum();
    if (t.m().stats().hasCounter("net.dead_links"))
        rec.deadLinks = t.m().stats().get("net.dead_links");
    std::ostringstream os;
    t.m().stats().writeJson(os);
    rec.statsJson = os.str();
    if (!traceFile.empty())
        rec.trace = slurpAndRemove(traceFile);
    return rec;
}

TEST(ThreadsIdentity, StatsJsonByteIdenticalOnAllSystems)
{
    for (const char* system : kSystems) {
        const RunRec a = runSystem(system, 1);
        const RunRec b = runSystem(system, 4);
        EXPECT_EQ(a.cycles, b.cycles) << system;
        EXPECT_EQ(a.events, b.events) << system;
        EXPECT_EQ(a.checksum, b.checksum) << system;
        EXPECT_EQ(a.statsJson, b.statsJson) << system;
    }
}

TEST(ThreadsIdentity, TraceFileByteIdenticalOnAllSystems)
{
    for (const char* system : kSystems) {
        const std::string base =
            std::string("threads_identity_") + system;
        const RunRec a =
            runSystem(system, 1, {}, base + "_t1.trace.json");
        const RunRec b =
            runSystem(system, 4, {}, base + "_t4.trace.json");
        ASSERT_FALSE(a.trace.empty()) << system;
        EXPECT_EQ(a.trace, b.trace) << system;
        EXPECT_EQ(a.statsJson, b.statsJson) << system;
    }
}

TEST(ThreadsIdentity, TraceForcesSerialEngineLikeCheck)
{
    // --trace / --analyze / --trace-critical compose with --threads=N
    // the same way --check does: a stream consumer forces the serial
    // engine (with a logged notice), so the record stream stays a
    // single totally-ordered sequence.
    for (bool viaTxn : {false, true}) {
        MachineConfig cfg;
        cfg.core.nodes = 8;
        cfg.core.threads = 4;
        if (viaTxn)
            cfg.obs.txn = true;
        else {
            cfg.obs.enable = true;
            cfg.obs.traceFile = "threads_force_serial.trace.json";
        }
        TargetMachine t = buildTyphoonStache(cfg);
        EXPECT_EQ(t.machine->engine(), nullptr) << "viaTxn=" << viaTxn;
        if (!viaTxn)
            std::remove("threads_force_serial.trace.json");
    }

    // A consumer-free recorder (crash rings riding along under
    // --faults) does NOT force serial: rings are lane-owned.
    MachineConfig cfg;
    cfg.core.nodes = 8;
    cfg.core.threads = 4;
    cfg.faults = parseFaultSpec("drop=0.01,seed=7");
    TargetMachine t = buildTyphoonStache(cfg);
    ASSERT_NE(t.obs, nullptr);
    EXPECT_NE(t.machine->engine(), nullptr);
}

TEST(ThreadsIdentity, TxnStatsByteIdenticalAcrossThreadCounts)
{
    // The transaction tracer is a stream consumer, so a --threads=N
    // request runs serial; its stats (obs.txn.*) must be identical to
    // an explicit --threads=1 run.
    MachineConfig cfg;
    cfg.obs.txn = true;
    const RunRec a = runSystem("stache", 1, cfg);
    const RunRec b = runSystem("stache", 4, cfg);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.statsJson, b.statsJson);
    EXPECT_NE(a.statsJson.find("obs.txn.completed"),
              std::string::npos);
}

TEST(ThreadsIdentity, CampaignReportByteIdentical)
{
    auto runOnce = [](int threads) {
        CampaignConfig cc;
        cc.base.core.nodes = 8;
        cc.base.core.threads = threads;
        cc.base.faults = parseFaultSpec(
            "drop=0.02,dup=0.02,reorder=0.05,seed=7");
        cc.systems = {"dirnnb", "stache"};
        cc.runs = 2;
        cc.progress = false;
        const CampaignReport rep = runCampaign(cc);
        std::ostringstream os;
        rep.writeJson(os);
        return os.str();
    };
    const std::string a = runOnce(1);
    const std::string b = runOnce(4);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(ThreadsIdentity, DeadLinkRevivalChurnByteIdenticalAcrossThreads)
{
    // A hair-trigger retry cap over a reordering, duplicating fabric:
    // the ack for a message routinely arrives after its channel was
    // declared dead, so links die and are revived by late acks all
    // run long (transport.cc handleAck). Nothing is ever lost (no
    // drop faults), so the run completes clean — and the dead/revive
    // churn must replay byte-identically under the parallel engine.
    MachineConfig cfg;
    cfg.faults = parseFaultSpec("reorder=0.05:64,dup=0.02,seed=11");
    cfg.reliable.rto = 2;
    cfg.reliable.rtoMax = 2;
    cfg.reliable.maxRetries = 1;
    const RunRec a = runSystem("stache", 1, cfg);
    const RunRec b = runSystem("stache", 4, cfg);
    EXPECT_GT(a.deadLinks, 0u); // links really did die mid-run
    EXPECT_EQ(a.deadLinks, b.deadLinks);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.statsJson, b.statsJson);
}

TEST(ThreadsIdentity, SeededPerturbEquivalentAcrossThreadCounts)
{
    // --perturb requires the reference-heap queue; the perturbed
    // same-tick order must depend only on the seed, never on the
    // worker count.
    struct ScopedQueueMode
    {
        EventQueue::Mode saved = EventQueue::defaultMode();
        ScopedQueueMode()
        {
            EventQueue::setDefaultMode(
                EventQueue::Mode::ReferenceHeap);
        }
        ~ScopedQueueMode() { EventQueue::setDefaultMode(saved); }
    } scope;

    MachineConfig cfg;
    cfg.check.enable = true;
    cfg.check.perturb = true;
    cfg.check.perturbSeed = 0xfeed;
    const RunRec a = runSystem("stache", 1, cfg);
    const RunRec b = runSystem("stache", 4, cfg);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.statsJson, b.statsJson);
}

TEST(ThreadsIdentity, WatchdogTripsUnderThreads)
{
    // A permanently cut link with the reliable transport on: the
    // transport eventually declares the link dead, the victim's miss
    // stays open forever, and the watchdog must trip — probing the
    // memory system and transport through their atomic snapshot cells
    // while the engine is attached.
    MachineConfig cfg;
    cfg.core.nodes = 8;
    cfg.core.threads = 4;
    cfg.faults.cuts.push_back({0, 1});
    cfg.watchdog.horizon = 20'000;

    TargetMachine t = buildTyphoonStache(cfg);
    auto app = makeWorkload("em3d", DataSet::Tiny, 1);
    EXPECT_THROW(t.run(*app), WatchdogTimeout);
    EXPECT_EQ(t.m().stats().get("obs.watchdog.trips"), 1u);
}

TEST(ThreadsIdentity, ActorWorkloadHashesEqualSerialAndEngine)
{
    ActorBenchParams p;
    p.nodes = 16;
    p.horizon = 20'000;

    ActorBenchParams serial = p; // threads == 0: plain EventQueue
    const ActorBenchResult s = runActorBench(serial);

    for (int threads : {1, 2, 4}) {
        ActorBenchParams ep = p;
        ep.threads = threads;
        const ActorBenchResult e = runActorBench(ep);
        EXPECT_EQ(e.stateHash, s.stateHash) << threads;
        EXPECT_EQ(e.events, s.events) << threads;
        EXPECT_EQ(e.messages, s.messages) << threads;
    }
}

TEST(ThreadsIdentity, ActorWorkloadShardedRecorderCountsMatch)
{
    ActorBenchParams p;
    p.nodes = 16;
    p.horizon = 10'000;
    p.record = true;

    ActorBenchParams serial = p;
    const ActorBenchResult s = runActorBench(serial);

    ActorBenchParams ep = p;
    ep.threads = 4;
    const ActorBenchResult e = runActorBench(ep);
    EXPECT_EQ(e.stateHash, s.stateHash);
    EXPECT_EQ(e.ringRecords, s.ringRecords);
}

} // namespace
} // namespace tt
