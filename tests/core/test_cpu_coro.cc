/**
 * @file
 * Tests of the CPU coroutine integration against a scripted mock
 * memory system: local-time accounting, inline vs. slow-path
 * completion, and the quantum yield mechanism.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "core/cpu.hh"
#include "core/machine.hh"
#include "core/shared.hh"

namespace tt
{
namespace
{

/**
 * Mock memory system: flat backing store; accesses below kSlowBase
 * complete inline with a fixed cost, accesses at/above it complete
 * through the event queue after a fixed delay.
 */
class MockMem : public MemorySystem
{
  public:
    static constexpr Addr kSlowBase = 0x100000;

    explicit MockMem(EventQueue& eq) : _eq(eq) {}

    Tick inlineCost = 0;
    Tick slowDelay = 100;
    int slowCount = 0;

    AccessOutcome
    access(MemRequest* req) override
    {
        if (req->vaddr < kSlowBase) {
            transfer(req);
            return {true, inlineCost};
        }
        ++slowCount;
        _eq.schedule(req->issueTime + slowDelay, [this, req] {
            transfer(req);
            req->cpu->completeAccess(*req);
        });
        return {false, 0};
    }

    Addr
    shmalloc(std::size_t bytes, NodeId) override
    {
        Addr a = _next;
        _next += (bytes + 63) & ~63ull;
        return a;
    }

    NodeId homeOf(Addr) const override { return 0; }

    void
    peek(Addr va, void* buf, std::size_t len) override
    {
        for (std::size_t i = 0; i < len; ++i)
            static_cast<std::uint8_t*>(buf)[i] = _store[va + i];
    }

    void
    poke(Addr va, const void* buf, std::size_t len) override
    {
        for (std::size_t i = 0; i < len; ++i)
            _store[va + i] = static_cast<const std::uint8_t*>(buf)[i];
    }

    std::string name() const override { return "mock"; }

  private:
    void
    transfer(MemRequest* req)
    {
        if (req->op == MemOp::Read)
            peek(req->vaddr, req->buf, req->size);
        else
            poke(req->vaddr, req->buf, req->size);
    }

    EventQueue& _eq;
    std::map<Addr, std::uint8_t> _store;
    Addr _next = 0x1000;
};

struct CpuFixture : ::testing::Test
{
    CoreParams params;
    std::unique_ptr<Machine> m;
    std::unique_ptr<MockMem> mem;

    void
    makeMachine(int nodes, Tick quantum = 32)
    {
        params.nodes = nodes;
        params.quantum = quantum;
        m = std::make_unique<Machine>(params);
        mem = std::make_unique<MockMem>(m->eq());
        m->setMemSystem(mem.get());
    }
};

/** Single-processor app from a function. */
class FnApp : public App
{
  public:
    using Body = std::function<Task<void>(Cpu&)>;
    explicit FnApp(Body b) : _b(std::move(b)) {}
    std::string name() const override { return "fn"; }
    Task<void> body(Cpu& cpu) override { return _b(cpu); }

  private:
    Body _b;
};

TEST_F(CpuFixture, ComputeAdvancesLocalTime)
{
    makeMachine(1);
    FnApp app([](Cpu& cpu) -> Task<void> {
        co_await cpu.compute(500);
        EXPECT_EQ(cpu.localTime(), 500u);
    });
    auto r = m->run(app);
    EXPECT_EQ(r.execTime, 500u);
}

TEST_F(CpuFixture, InlineAccessChargesInstructionPlusCost)
{
    makeMachine(1);
    mem->inlineCost = 29;
    FnApp app([](Cpu& cpu) -> Task<void> {
        co_await cpu.write<int>(0x1000, 5);
        EXPECT_EQ(cpu.localTime(), 30u); // 1 + 29
        int v = co_await cpu.read<int>(0x1000);
        EXPECT_EQ(v, 5);
        EXPECT_EQ(cpu.localTime(), 60u);
    });
    m->run(app);
}

TEST_F(CpuFixture, SlowAccessResumesAtCompletionTick)
{
    makeMachine(1);
    mem->slowDelay = 123;
    FnApp app([](Cpu& cpu) -> Task<void> {
        co_await cpu.compute(10);
        co_await cpu.write<int>(MockMem::kSlowBase, 9);
        // issue at 11 (10 compute + 1 instr), complete at 11 + 123.
        EXPECT_EQ(cpu.localTime(), 134u);
        int v = co_await cpu.read<int>(MockMem::kSlowBase);
        EXPECT_EQ(v, 9);
    });
    m->run(app);
    EXPECT_EQ(mem->slowCount, 2);
}

TEST_F(CpuFixture, QuantumBoundsRunAhead)
{
    makeMachine(2, /*quantum=*/16);
    // Two CPUs doing pure inline work: each must yield every <=16+eps
    // cycles so the event queue interleaves them.
    FnApp app([](Cpu& cpu) -> Task<void> {
        for (int i = 0; i < 100; ++i) {
            co_await cpu.compute(10);
            // After a yield, local time never exceeds queue time by
            // more than one step's work.
            EXPECT_LE(cpu.localTime(),
                      cpu.eq().now() + cpu.params().quantum + 10);
        }
    });
    m->run(app);
}

TEST_F(CpuFixture, RunReportsPerCpuFinishTimes)
{
    makeMachine(3);
    FnApp app([](Cpu& cpu) -> Task<void> {
        co_await cpu.compute(100 * (cpu.id() + 1));
    });
    auto r = m->run(app);
    EXPECT_EQ(r.cpuFinish[0], 100u);
    EXPECT_EQ(r.cpuFinish[1], 200u);
    EXPECT_EQ(r.cpuFinish[2], 300u);
    EXPECT_EQ(r.execTime, 300u);
}

TEST_F(CpuFixture, AppExceptionPropagates)
{
    makeMachine(2);
    FnApp app([](Cpu& cpu) -> Task<void> {
        co_await cpu.compute(5);
        if (cpu.id() == 1)
            throw std::runtime_error("app bug");
    });
    EXPECT_THROW(m->run(app), std::runtime_error);
}

TEST_F(CpuFixture, GArrayRoundTrip)
{
    makeMachine(1);
    GArray<double> arr(*mem, 16);
    FnApp app([&arr](Cpu& cpu) -> Task<void> {
        for (std::size_t i = 0; i < arr.size(); ++i)
            co_await arr.put(cpu, i, i * 1.5);
        double sum = 0;
        for (std::size_t i = 0; i < arr.size(); ++i)
            sum += co_await arr.get(cpu, i);
        EXPECT_DOUBLE_EQ(sum, 1.5 * (15 * 16 / 2));
    });
    m->run(app);
    EXPECT_DOUBLE_EQ(arr.peek(*mem, 3), 4.5);
}

TEST_F(CpuFixture, GArrayOutOfRangePanics)
{
    makeMachine(1);
    GArray<int> arr(*mem, 4);
    FnApp app([&arr](Cpu& cpu) -> Task<void> {
        co_await arr.get(cpu, 4);
    });
    EXPECT_ANY_THROW(m->run(app));
}

TEST_F(CpuFixture, StatsCountAccesses)
{
    makeMachine(1);
    FnApp app([](Cpu& cpu) -> Task<void> {
        co_await cpu.read<int>(0x1000);
        co_await cpu.write<int>(0x1000, 1);
        co_await cpu.write<int>(0x1004, 2);
    });
    m->run(app);
    EXPECT_EQ(m->stats().get("cpu.loads"), 1u);
    EXPECT_EQ(m->stats().get("cpu.stores"), 2u);
}

} // namespace
} // namespace tt
