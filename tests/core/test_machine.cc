/** @file Tests of Machine lifecycle: multi-run, deadlock detection. */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "tests/helpers.hh"

namespace tt
{
namespace
{

class NullMem : public MemorySystem
{
  public:
    AccessOutcome access(MemRequest*) override { return {true, 0}; }
    Addr shmalloc(std::size_t, NodeId) override { return 0; }
    NodeId homeOf(Addr) const override { return 0; }
    void peek(Addr, void*, std::size_t) override {}
    void poke(Addr, const void*, std::size_t) override {}
    std::string name() const override { return "null"; }
};

TEST(Machine, RunWithoutMemSystemPanics)
{
    CoreParams p;
    p.nodes = 1;
    Machine m(p);
    test::FnApp app([](Cpu& cpu) -> Task<void> {
        co_await cpu.compute(1);
    });
    EXPECT_ANY_THROW(m.run(app));
}

TEST(Machine, BackToBackRunsAccumulateTime)
{
    CoreParams p;
    p.nodes = 2;
    Machine m(p);
    NullMem mem;
    m.setMemSystem(&mem);
    test::FnApp app([](Cpu& cpu) -> Task<void> {
        co_await cpu.compute(100);
    });
    const RunResult r1 = m.run(app);
    const RunResult r2 = m.run(app);
    EXPECT_GE(r1.execTime, 100u);
    EXPECT_GE(r2.execTime, r1.execTime + 100)
        << "second run continues on the same clock";
}

TEST(Machine, DeadlockIsDetectedAndReported)
{
    CoreParams p;
    p.nodes = 2;
    Machine m(p);
    NullMem mem;
    m.setMemSystem(&mem);
    // Node 1 waits at a barrier node 0 never reaches: the event queue
    // drains with an unfinished processor -> panic, not silent hang.
    Machine* mp = &m;
    test::FnApp app([mp](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 1)
            co_await mp->barrier().wait(cpu);
        co_return;
    });
    test::ExpectLeaksInScope deadlockAbandonsFrames;
    EXPECT_ANY_THROW(m.run(app));
}

TEST(Machine, RunResultReportsEventsAndPerCpuTimes)
{
    CoreParams p;
    p.nodes = 3;
    Machine m(p);
    NullMem mem;
    m.setMemSystem(&mem);
    test::FnApp app([](Cpu& cpu) -> Task<void> {
        co_await cpu.compute(50 * (cpu.id() + 1));
    });
    const RunResult r = m.run(app);
    ASSERT_EQ(r.cpuFinish.size(), 3u);
    EXPECT_EQ(r.cpuFinish[0], 50u);
    EXPECT_EQ(r.cpuFinish[2], 150u);
    EXPECT_EQ(r.execTime, 150u);
    EXPECT_GT(r.events, 0u);
}

TEST(Machine, ZeroQuantumForcesStrictEventOrdering)
{
    CoreParams p;
    p.nodes = 2;
    p.quantum = 0;
    Machine m(p);
    NullMem mem;
    m.setMemSystem(&mem);
    // With quantum 0, every compute must yield; interleaving is
    // strictly time-ordered, and the run still terminates correctly.
    std::vector<int> order;
    test::FnApp app([&order](Cpu& cpu) -> Task<void> {
        for (int i = 0; i < 3; ++i) {
            co_await cpu.compute(10);
            order.push_back(cpu.id());
        }
    });
    m.run(app);
    ASSERT_EQ(order.size(), 6u);
    // Both CPUs advance in lockstep: 0,1,0,1,... (ties broken by
    // insertion order).
    EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1, 0, 1}));
}

} // namespace
} // namespace tt
