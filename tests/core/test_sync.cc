/** @file Tests for barrier and lock primitives. */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/cpu.hh"
#include "core/machine.hh"
#include "core/sync.hh"

namespace tt
{
namespace
{

/** Trivial memory system: everything inline, zero cost. */
class NullMem : public MemorySystem
{
  public:
    AccessOutcome access(MemRequest*) override { return {true, 0}; }
    Addr shmalloc(std::size_t, NodeId) override { return 0; }
    NodeId homeOf(Addr) const override { return 0; }
    void peek(Addr, void*, std::size_t) override {}
    void poke(Addr, const void*, std::size_t) override {}
    std::string name() const override { return "null"; }
};

class FnApp : public App
{
  public:
    using Body = std::function<Task<void>(Cpu&)>;
    explicit FnApp(Body b) : _b(std::move(b)) {}
    std::string name() const override { return "fn"; }
    Task<void> body(Cpu& cpu) override { return _b(cpu); }

  private:
    Body _b;
};

struct SyncFixture : ::testing::Test
{
    CoreParams params;
    std::unique_ptr<Machine> m;
    NullMem mem;

    void
    makeMachine(int nodes)
    {
        params.nodes = nodes;
        params.barrierLatency = 11;
        m = std::make_unique<Machine>(params);
        m->setMemSystem(&mem);
    }
};

TEST_F(SyncFixture, BarrierReleasesAllAtMaxArrivalPlusLatency)
{
    makeMachine(4);
    FnApp app([this](Cpu& cpu) -> Task<void> {
        co_await cpu.compute(100 * (cpu.id() + 1)); // arrive 100..400
        co_await m->barrier().wait(cpu);
        EXPECT_EQ(cpu.localTime(), 411u); // max(400) + 11
    });
    m->run(app);
    EXPECT_EQ(m->barrier().episodes(), 1u);
}

TEST_F(SyncFixture, BarrierIsReusableAcrossEpisodes)
{
    makeMachine(3);
    std::vector<int> phases;
    FnApp app([this, &phases](Cpu& cpu) -> Task<void> {
        for (int ph = 0; ph < 5; ++ph) {
            co_await cpu.compute(cpu.id() * 7 + 1);
            co_await m->barrier().wait(cpu);
            if (cpu.id() == 0)
                phases.push_back(ph);
        }
    });
    m->run(app);
    EXPECT_EQ(phases.size(), 5u);
    EXPECT_EQ(m->barrier().episodes(), 5u);
}

TEST_F(SyncFixture, BarrierActsAsFullSynchronization)
{
    makeMachine(8);
    // Classic producer/consumer across a barrier: everyone writes a
    // slot, barrier, everyone reads all slots written before it.
    std::vector<int> slots(8, 0);
    FnApp app([this, &slots](Cpu& cpu) -> Task<void> {
        co_await cpu.compute(13 * (cpu.id() + 1));
        slots[cpu.id()] = cpu.id() + 1;
        co_await m->barrier().wait(cpu);
        int sum = 0;
        for (int s : slots)
            sum += s;
        EXPECT_EQ(sum, 36);
    });
    m->run(app);
}

TEST_F(SyncFixture, LockProvidesMutualExclusion)
{
    makeMachine(6);
    SimLock lock(m->eq(), params.lockLatency);
    int inside = 0;
    int maxInside = 0;
    int total = 0;
    FnApp app([&](Cpu& cpu) -> Task<void> {
        for (int i = 0; i < 10; ++i) {
            co_await lock.acquire(cpu);
            ++inside;
            maxInside = std::max(maxInside, inside);
            ++total;
            co_await cpu.compute(17);
            --inside;
            lock.release(cpu);
        }
    });
    m->run(app);
    EXPECT_EQ(maxInside, 1);
    EXPECT_EQ(total, 60);
    EXPECT_FALSE(lock.held());
}

TEST_F(SyncFixture, LockChargesFixedCost)
{
    makeMachine(1);
    SimLock lock(m->eq(), 40);
    FnApp app([&](Cpu& cpu) -> Task<void> {
        const Tick t0 = cpu.localTime();
        co_await lock.acquire(cpu);
        lock.release(cpu);
        EXPECT_EQ(cpu.localTime() - t0, 40u);
    });
    m->run(app);
}

TEST_F(SyncFixture, ContendedLockSerializesHolders)
{
    makeMachine(4);
    SimLock lock(m->eq(), 40);
    std::vector<std::pair<Tick, Tick>> spans; // (enter, exit)
    FnApp app([&](Cpu& cpu) -> Task<void> {
        co_await lock.acquire(cpu);
        const Tick enter = cpu.localTime();
        co_await cpu.compute(100);
        spans.emplace_back(enter, cpu.localTime());
        lock.release(cpu);
    });
    m->run(app);
    ASSERT_EQ(spans.size(), 4u);
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i)
        EXPECT_GE(spans[i].first, spans[i - 1].second)
            << "critical sections overlap";
}

TEST_F(SyncFixture, ReleasingUnheldLockPanics)
{
    makeMachine(1);
    SimLock lock(m->eq(), 40);
    FnApp app([&](Cpu& cpu) -> Task<void> {
        co_await cpu.compute(1);
        lock.release(cpu);
    });
    EXPECT_ANY_THROW(m->run(app));
}

} // namespace
} // namespace tt
