/**
 * @file
 * Parameterized fuzz of the EM3D update protocol: random graph
 * shapes, remote fractions, and machine widths — every configuration
 * must match DirNNB bit-for-bit and beat transparent Stache on time
 * once there is meaningful remote traffic.
 */

#include <gtest/gtest.h>

#include "apps/em3d.hh"
#include "apps/workloads.hh"
#include "config/builders.hh"

namespace tt
{
namespace
{

struct Em3dCfg
{
    int nodes;
    int graphNodes;
    int degree;
    double remote;
    std::uint64_t seed;

    friend std::ostream&
    operator<<(std::ostream& os, const Em3dCfg& c)
    {
        return os << "n" << c.nodes << "_g" << c.graphNodes << "_d"
                  << c.degree << "_r" << int(c.remote * 100) << "_s"
                  << c.seed;
    }
};

class Em3dUpdateFuzz : public ::testing::TestWithParam<Em3dCfg>
{
};

TEST_P(Em3dUpdateFuzz, MatchesDirNNBBitForBit)
{
    const Em3dCfg c = GetParam();
    Em3dApp::Params p;
    p.nNodes = c.graphNodes;
    p.degree = c.degree;
    p.remoteFrac = c.remote;
    p.iterations = 3;
    p.seed = c.seed;

    MachineConfig cfg;
    cfg.core.nodes = c.nodes;

    double csDir, csUpd;
    Tick tStache = 0, tUpd = 0;
    {
        auto t = buildDirNNB(cfg);
        Em3dApp app(p);
        t.run(app);
        csDir = app.checksum();
    }
    {
        auto t = buildTyphoonStache(cfg);
        Em3dApp app(p);
        tStache = t.run(app).execTime;
    }
    {
        auto t = buildTyphoonEm3dUpdate(cfg);
        Em3dApp app(p, Em3dApp::Mode::Update, t.em3d);
        tUpd = t.run(app).execTime;
        csUpd = app.checksum();

        // Update accounting balances at quiescence.
        auto& st = t.m().stats();
        EXPECT_EQ(st.get("em3d.updates_sent"),
                  st.get("em3d.updates_received"));
        // No Stache invalidation traffic on the value arrays.
        EXPECT_EQ(st.get("stache.recalls"), 0u);
    }
    EXPECT_EQ(csDir, csUpd);
    if (c.remote >= 0.2) {
        EXPECT_LT(tUpd, tStache)
            << "update protocol should win with remote traffic";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Em3dUpdateFuzz,
    ::testing::Values(Em3dCfg{4, 512, 3, 0.0, 1},
                      Em3dCfg{4, 512, 3, 0.5, 2},
                      Em3dCfg{8, 1024, 5, 0.2, 3},
                      Em3dCfg{8, 1024, 5, 0.4, 4},
                      Em3dCfg{16, 2048, 4, 0.3, 5},
                      Em3dCfg{3, 300, 7, 0.25, 6},
                      Em3dCfg{8, 1000, 2, 0.35, 7}),
    [](const auto& info) {
        std::ostringstream oss;
        oss << info.param;
        return oss.str();
    });

TEST(Em3dUpdateFuzz, RegistrationCountsMatchGraphCut)
{
    // The number of registered copies equals the number of distinct
    // (consumer, remote block) pairs the graph induces — bounded by
    // the remote edge count and stable across repeat runs.
    Em3dApp::Params p;
    p.nNodes = 1024;
    p.degree = 4;
    p.remoteFrac = 0.3;
    p.iterations = 2;

    std::uint64_t first = 0;
    for (int run = 0; run < 2; ++run) {
        MachineConfig cfg;
        cfg.core.nodes = 8;
        auto t = buildTyphoonEm3dUpdate(cfg);
        Em3dApp app(p, Em3dApp::Mode::Update, t.em3d);
        t.run(app);
        const std::uint64_t regs =
            t.m().stats().get("em3d.copies_registered");
        EXPECT_GT(regs, 0u);
        EXPECT_LE(regs,
                  static_cast<std::uint64_t>(p.nNodes) * p.degree);
        if (run == 0)
            first = regs;
        else
            EXPECT_EQ(regs, first);
    }
}

} // namespace
} // namespace tt
