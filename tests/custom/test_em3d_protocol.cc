/**
 * @file
 * Tests of the custom EM3D delayed-update protocol: copy
 * registration, update pushing without invalidation, the counting
 * fuzzy barrier, and end-to-end equivalence with transparent shared
 * memory.
 */

#include <gtest/gtest.h>

#include "apps/em3d.hh"
#include "apps/workloads.hh"
#include "config/builders.hh"
#include "tests/helpers.hh"

namespace tt
{
namespace
{

struct UpdateRig
{
    MachineConfig cfg;
    TargetMachine t;

    explicit UpdateRig(int nodes)
    {
        cfg.core.nodes = nodes;
        t = buildTyphoonEm3dUpdate(cfg);
    }
};

TEST(Em3dProtocol, AllocCustomCreatesPinnedRwHomePages)
{
    UpdateRig rig(4);
    Addr a = rig.t.em3d->allocCustom(4096, /*home=*/2,
                                     Em3dUpdateProtocol::kE);
    EXPECT_EQ(rig.t.em3d->homeOf(a), 2);
    EXPECT_EQ(rig.t.typhoon->tagOf(2, a), AccessTag::ReadWrite);
    EXPECT_EQ(rig.t.typhoon->pageTableOf(2).lookup(a)->mode,
              Em3dUpdateProtocol::kModeCustomHome);
}

TEST(Em3dProtocol, ConsumerRegistersAndHomeTagStaysRW)
{
    UpdateRig rig(2);
    Addr a = rig.t.em3d->allocCustom(4096, 0, Em3dUpdateProtocol::kE);
    double init = 5.5;
    rig.t.em3d->poke(a, &init, 8);

    test::FnApp app([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 1) {
            double v = co_await cpu.read<double>(a);
            EXPECT_DOUBLE_EQ(v, 5.5);
        }
        co_await rig.t.m().barrier().wait(cpu);
    });
    rig.t.run(app);

    // Home stays writable; consumer holds a read-only copy; the copy
    // list records it; the consumer expects one E-update per flush.
    EXPECT_EQ(rig.t.typhoon->tagOf(0, a), AccessTag::ReadWrite);
    EXPECT_EQ(rig.t.typhoon->tagOf(1, a), AccessTag::ReadOnly);
    EXPECT_EQ(rig.t.em3d->copyListSize(a), 1u);
    EXPECT_EQ(rig.t.em3d->expectedUpdates(1, Em3dUpdateProtocol::kE),
              1u);
}

TEST(Em3dProtocol, EndStepPushesValuesWithoutInvalidation)
{
    UpdateRig rig(2);
    Addr a = rig.t.em3d->allocCustom(4096, 0, Em3dUpdateProtocol::kE);
    double out = 0;

    test::FnApp app([&](Cpu& cpu) -> Task<void> {
        // Round 0: consumer staches the block.
        if (cpu.id() == 1)
            co_await cpu.read<double>(a);
        co_await rig.t.m().barrier().wait(cpu);

        // Round 1: producer writes (no fault: home tag is RW) and
        // flushes; consumer waits on the update count.
        if (cpu.id() == 0)
            co_await cpu.write<double>(a, 42.25);
        co_await rig.t.em3d->endStep(cpu, Em3dUpdateProtocol::kE);
        co_await rig.t.m().barrier().wait(cpu);

        if (cpu.id() == 1)
            out = co_await cpu.read<double>(a);
    });
    rig.t.run(app);

    EXPECT_DOUBLE_EQ(out, 42.25);
    auto& st = rig.t.m().stats();
    EXPECT_EQ(st.get("em3d.updates_sent"), 1u);
    EXPECT_EQ(st.get("em3d.updates_received"), 1u);
    // The defining property: no invalidations, no re-fetch.
    EXPECT_EQ(st.get("stache.invals_sent"), 0u);
    EXPECT_EQ(st.get("em3d.get_ro"), 1u) << "exactly one cold fetch";
    // Consumer's copy stays ReadOnly throughout.
    EXPECT_EQ(rig.t.typhoon->tagOf(1, a), AccessTag::ReadOnly);
}

TEST(Em3dProtocol, UpdateCountingReleasesOnlyWhenAllArrive)
{
    // Consumer staches blocks from two producers; endStep must wait
    // for updates from both.
    UpdateRig rig(3);
    Addr a0 = rig.t.em3d->allocCustom(4096, 0, Em3dUpdateProtocol::kE);
    Addr a1 = rig.t.em3d->allocCustom(4096, 1, Em3dUpdateProtocol::kE);
    double sum = 0;

    test::FnApp app([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 2) {
            co_await cpu.read<double>(a0);
            co_await cpu.read<double>(a1);
        }
        co_await rig.t.m().barrier().wait(cpu);
        if (cpu.id() == 0)
            co_await cpu.write<double>(a0, 10.0);
        if (cpu.id() == 1) {
            co_await cpu.compute(5000); // straggler producer
            co_await cpu.write<double>(a1, 20.0);
        }
        co_await rig.t.em3d->endStep(cpu, Em3dUpdateProtocol::kE);
        co_await rig.t.m().barrier().wait(cpu);
        if (cpu.id() == 2) {
            sum = co_await cpu.read<double>(a0) +
                  co_await cpu.read<double>(a1);
        }
    });
    rig.t.run(app);
    EXPECT_DOUBLE_EQ(sum, 30.0);
    EXPECT_EQ(rig.t.m().stats().get("em3d.updates_received"), 2u);
}

TEST(Em3dProtocol, Em3dAppUpdateModeMatchesTransparentChecksum)
{
    Em3dApp::Params p = em3dParams(DataSet::Tiny, 0.3);
    p.iterations = 3;

    double csStache = 0, csUpdate = 0, csDir = 0;
    Tick tUpdate = 0, tStache = 0;
    {
        MachineConfig cfg;
        cfg.core.nodes = 8;
        auto t = buildDirNNB(cfg);
        Em3dApp app(p);
        t.run(app);
        csDir = app.checksum();
    }
    {
        MachineConfig cfg;
        cfg.core.nodes = 8;
        auto t = buildTyphoonStache(cfg);
        Em3dApp app(p);
        tStache = t.run(app).execTime;
        csStache = app.checksum();
    }
    {
        MachineConfig cfg;
        cfg.core.nodes = 8;
        auto t = buildTyphoonEm3dUpdate(cfg);
        Em3dApp app(p, Em3dApp::Mode::Update, t.em3d);
        tUpdate = t.run(app).execTime;
        csUpdate = app.checksum();
        EXPECT_GT(t.m().stats().get("em3d.updates_sent"), 0u);
    }
    EXPECT_DOUBLE_EQ(csDir, csStache);
    EXPECT_DOUBLE_EQ(csStache, csUpdate);
    // The custom protocol should beat transparent Stache on the same
    // hardware for this sharing pattern.
    EXPECT_LT(tUpdate, tStache);
}

} // namespace
} // namespace tt
