/**
 * @file
 * Tests of the migratory-sharing custom protocol: classification,
 * promotion, demotion on read sharing, correctness under the
 * promoted flows, and the end-to-end win on MP3D-style traffic.
 */

#include <gtest/gtest.h>

#include "apps/workloads.hh"
#include "config/builders.hh"
#include "tests/helpers.hh"

namespace tt
{
namespace
{

struct MigRig
{
    MachineConfig cfg;
    TargetMachine t;

    explicit MigRig(int nodes)
    {
        cfg.core.nodes = nodes;
        t = buildTyphoonMigratory(cfg);
    }

    RunResult
    run(test::FnApp::Body body)
    {
        test::FnApp app(std::move(body));
        return t.m().run(app);
    }
};

/** Classic migratory pattern: each node in turn reads then writes. */
Task<void>
rmwRounds(Cpu& cpu, Machine& m, Addr a, int rounds)
{
    const int P = m.nodes();
    for (int r = 0; r < rounds; ++r) {
        for (int turn = 0; turn < P; ++turn) {
            if (turn == cpu.id() && cpu.id() != 0) { // skip the home
                int v = co_await cpu.read<int>(a);
                co_await cpu.write<int>(a, v + 1);
            }
            co_await m.barrier().wait(cpu);
        }
    }
}

TEST(Migratory, ClassifiesAndPromotesRmwMigration)
{
    MigRig rig(4);
    Addr a = rig.t.m().memsys().shmalloc(4096, 0);
    MigRig* r = &rig;
    rig.run([r, a](Cpu& cpu) -> Task<void> {
        co_await rmwRounds(cpu, r->t.m(), a, 3);
    });
    EXPECT_GE(rig.t.migratory->migratoryBlocks(), 1u);
    EXPECT_GT(rig.t.migratory->promotions(), 0u);
    // Data correct: 3 rounds x 3 writers.
    int out = 0;
    rig.t.m().memsys().peek(a, &out, 4);
    EXPECT_EQ(out, 9);
    EXPECT_TRUE(rig.t.migratory->quiescent());
}

TEST(Migratory, PromotionEliminatesUpgradeRequests)
{
    // Same pattern on plain Stache vs Migratory: the latter must
    // send far fewer GetRW (upgrades disappear after warm-up) and
    // finish faster.
    auto runOn = [](bool migratory) {
        MachineConfig cfg;
        cfg.core.nodes = 4;
        TargetMachine t = migratory ? buildTyphoonMigratory(cfg)
                                    : buildTyphoonStache(cfg);
        Addr a = t.m().memsys().shmalloc(4096, 0);
        TargetMachine* tp = &t;
        test::FnApp app([tp, a](Cpu& cpu) -> Task<void> {
            co_await rmwRounds(cpu, tp->m(), a, 6);
        });
        const RunResult r = t.m().run(app);
        return std::pair<Tick, std::uint64_t>(
            r.execTime, t.m().stats().get("stache.get_rw"));
    };
    const auto [tStache, rwStache] = runOn(false);
    const auto [tMig, rwMig] = runOn(true);
    EXPECT_LT(rwMig, rwStache / 2)
        << "promotions should absorb most write requests";
    EXPECT_LT(tMig, tStache);
}

TEST(Migratory, ReadSharingDemotesAndStaysCorrect)
{
    // Phase 1 trains the block as migratory; phase 2 switches to
    // pure read sharing — the protocol must demote it and serve
    // read-only copies again (no write-copy ping-pong).
    MigRig rig(6);
    Addr a = rig.t.m().memsys().shmalloc(4096, 0);
    MigRig* r = &rig;
    rig.run([r, a](Cpu& cpu) -> Task<void> {
        Machine& m = r->t.m();
        co_await rmwRounds(cpu, m, a, 2);
        // Pure read sharing, several rounds.
        for (int round = 0; round < 3; ++round) {
            if (cpu.id() != 0) {
                int v = co_await cpu.read<int>(a);
                EXPECT_EQ(v, 10); // 2 rounds x 5 writers
            }
            co_await m.barrier().wait(cpu);
        }
    });
    EXPECT_GT(rig.t.m().stats().get("migratory.demotions"), 0u);
    // After demotion the block ends Shared with multiple sharers.
    auto view = rig.t.migratory->inspect(a);
    EXPECT_EQ(view.state, StacheDirEntry::State::Shared);
    EXPECT_GE(view.sharers.size(), 2u);
    EXPECT_TRUE(rig.t.migratory->quiescent());
}

TEST(Migratory, AllAppsComputeIdenticalChecksums)
{
    // The protocol is a pure optimization: every workload must
    // produce exactly the DirNNB results.
    for (const char* app : {"mp3d", "ocean", "em3d"}) {
        MachineConfig cfg;
        cfg.core.nodes = 8;
        double csDir, csMig;
        {
            auto t = buildDirNNB(cfg);
            auto a = makeWorkload(app, DataSet::Tiny);
            t.run(*a);
            csDir = a->checksum();
        }
        {
            auto t = buildTyphoonMigratory(cfg);
            auto a = makeWorkload(app, DataSet::Tiny);
            t.run(*a);
            csMig = a->checksum();
        }
        EXPECT_EQ(csDir, csMig) << app;
    }
}

TEST(Migratory, HelpsMp3dStyleTraffic)
{
    // MP3D's locked cell updates are the migratory pattern; the
    // custom protocol must beat plain Stache on the real app.
    MachineConfig cfg;
    cfg.core.nodes = 8;
    Tick tStache, tMig;
    {
        auto t = buildTyphoonStache(cfg);
        auto a = makeWorkload("mp3d", DataSet::Tiny);
        tStache = t.run(*a).execTime;
    }
    {
        auto t = buildTyphoonMigratory(cfg);
        auto a = makeWorkload("mp3d", DataSet::Tiny);
        tMig = t.run(*a).execTime;
    }
    EXPECT_LT(tMig, tStache);
}

} // namespace
} // namespace tt
