/**
 * @file
 * Unit and scenario tests of the DirNNB baseline: state transitions,
 * Table 2 latencies, race handling, and end-to-end data correctness.
 */

#include <gtest/gtest.h>

#include "mem/addr.hh"
#include "tests/helpers.hh"

namespace tt
{
namespace
{

using test::DirRig;
using DS = DirMemSystem::DirState;

TEST(DirNNB, ShmallocAssignsRoundRobinHomes)
{
    DirRig rig(4);
    Addr a = rig.mem->shmalloc(4 * 4096);
    for (int p = 0; p < 4; ++p)
        EXPECT_EQ(rig.mem->homeOf(a + p * 4096), p);
    // Pinned allocation.
    Addr b = rig.mem->shmalloc(2 * 4096, 3);
    EXPECT_EQ(rig.mem->homeOf(b), 3);
    EXPECT_EQ(rig.mem->homeOf(b + 4096), 3);
}

TEST(DirNNB, PokePeekRoundTrip)
{
    DirRig rig(2);
    Addr a = rig.mem->shmalloc(4096);
    double v = 2.75;
    rig.mem->poke(a + 40, &v, sizeof(v));
    double out = 0;
    rig.mem->peek(a + 40, &out, sizeof(out));
    EXPECT_DOUBLE_EQ(out, 2.75);
}

TEST(DirNNB, LocalMissCosts29Cycles)
{
    DirRig rig(2);
    Addr a = rig.mem->shmalloc(4096, /*home=*/0);
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() != 0)
            co_return;
        Tick t0 = cpu.localTime();
        co_await cpu.read<int>(a);
        // 1 instr + 25 TLB miss + 29 local miss.
        EXPECT_EQ(cpu.localTime() - t0, 1u + 25 + 29);
        t0 = cpu.localTime();
        co_await cpu.read<int>(a); // now a cache + TLB hit
        EXPECT_EQ(cpu.localTime() - t0, 1u);
    });
}

TEST(DirNNB, RemoteCleanReadMissCostMatchesTable2Composition)
{
    DirRig rig(2);
    Addr a = rig.mem->shmalloc(4096, /*home=*/1);
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() != 0)
            co_return;
        const Tick t0 = cpu.localTime();
        co_await cpu.read<int>(a);
        // 1 instr + 25 TLB + 23 issue + (1 inject + 11 net)
        // + dir op (16 + 5 + 11) + (1 inject + 11 net) + 34 finish.
        const Tick expected = 1 + 25 + 23 + 12 + 32 + 12 + 34;
        EXPECT_EQ(cpu.localTime() - t0, expected);
    });
    auto v = rig.mem->inspect(a);
    EXPECT_EQ(v.state, DS::Shared);
    EXPECT_EQ(v.sharers, std::vector<NodeId>{0});
}

TEST(DirNNB, WriteMissTakesExclusiveOwnership)
{
    DirRig rig(2);
    Addr a = rig.mem->shmalloc(4096, 1);
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() != 0)
            co_return;
        co_await cpu.write<int>(a, 7);
    });
    auto v = rig.mem->inspect(a);
    EXPECT_EQ(v.state, DS::Excl);
    EXPECT_EQ(v.owner, 0);
    int out = 0;
    rig.mem->peek(a, &out, 4);
    EXPECT_EQ(out, 7);
}

TEST(DirNNB, ReadersThenWriterInvalidatesAllSharers)
{
    DirRig rig(4);
    Addr a = rig.mem->shmalloc(4096, 0);
    DirRig* r = &rig;
    rig.run([&, r](Cpu& cpu) -> Task<void> {
        // Phase 1: everyone reads (nodes 1..3 become sharers).
        co_await cpu.read<int>(a);
        co_await r->machine->barrier().wait(cpu);
        // Phase 2: node 2 writes.
        if (cpu.id() == 2)
            co_await cpu.write<int>(a, 42);
        co_await r->machine->barrier().wait(cpu);
        // Phase 3: everyone re-reads and sees the new value.
        int v = co_await cpu.read<int>(a);
        EXPECT_EQ(v, 42);
    });
    EXPECT_GE(rig.machine->stats().get("dir.inv_sent"), 2u);
    auto v = rig.mem->inspect(a);
    EXPECT_EQ(v.state, DS::Shared);
    EXPECT_TRUE(rig.mem->quiescent());
}

TEST(DirNNB, ReadOfRemoteDirtyBlockRecallsOwner)
{
    DirRig rig(3);
    Addr a = rig.mem->shmalloc(4096, 0);
    DirRig* r = &rig;
    rig.run([&, r](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 1)
            co_await cpu.write<int>(a, 99);
        co_await r->machine->barrier().wait(cpu);
        if (cpu.id() == 2) {
            int v = co_await cpu.read<int>(a);
            EXPECT_EQ(v, 99);
        }
    });
    EXPECT_EQ(rig.machine->stats().get("dir.recalls_sent"), 1u);
    auto v = rig.mem->inspect(a);
    // Owner 1 was downgraded and kept a shared copy; 2 joined.
    EXPECT_EQ(v.state, DS::Shared);
    EXPECT_EQ(v.sharers, (std::vector<NodeId>{1, 2}));
}

TEST(DirNNB, HomeReadOfRemoteDirtyBlockRecallsLocally)
{
    DirRig rig(2);
    Addr a = rig.mem->shmalloc(4096, 0);
    DirRig* r = &rig;
    rig.run([&, r](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 1)
            co_await cpu.write<int>(a, 5);
        co_await r->machine->barrier().wait(cpu);
        if (cpu.id() == 0) {
            int v = co_await cpu.read<int>(a);
            EXPECT_EQ(v, 5);
        }
    });
    auto v = rig.mem->inspect(a);
    EXPECT_EQ(v.state, DS::Shared);
    EXPECT_EQ(v.sharers, std::vector<NodeId>{1});
}

TEST(DirNNB, UpgradeGrantsWithoutDataWhenStillSharer)
{
    DirRig rig(2);
    Addr a = rig.mem->shmalloc(4096, 1);
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() != 0)
            co_return;
        co_await cpu.read<int>(a);  // become a sharer
        co_await cpu.write<int>(a, 3); // upgrade
    });
    auto v = rig.mem->inspect(a);
    EXPECT_EQ(v.state, DS::Excl);
    EXPECT_EQ(v.owner, 0);
}

TEST(DirNNB, FirstTouchAssignsHomeToFirstAccessor)
{
    DirParams dp;
    dp.firstTouch = true;
    DirRig rig(4, CoreParams{}, dp);
    Addr a = rig.mem->shmalloc(4 * 4096);
    EXPECT_EQ(rig.mem->homeOf(a), kNoNode) << "unassigned before touch";
    rig.run([&](Cpu& cpu) -> Task<void> {
        // Each node touches its own page.
        co_await cpu.write<int>(a + cpu.id() * 4096, cpu.id());
    });
    for (int p = 0; p < 4; ++p)
        EXPECT_EQ(rig.mem->homeOf(a + p * 4096), p);
    EXPECT_EQ(rig.machine->stats().get("dir.first_touch_assignments"),
              4u);
}

TEST(DirNNB, CapacityEvictionWritesBackDirtyVictims)
{
    // Cache so small that writing a few blocks forces dirty
    // evictions; afterwards the directory must hold no stale owners.
    CoreParams cp;
    cp.cacheSize = 256; // 8 lines, 2-way equivalent at assoc=4
    DirRig rig(2, cp);
    Addr a = rig.mem->shmalloc(2 * 4096, /*home=*/1);
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() != 0)
            co_return;
        for (int i = 0; i < 64; ++i)
            co_await cpu.write<int>(a + i * 32, i);
        for (int i = 0; i < 64; ++i) {
            int v = co_await cpu.read<int>(a + i * 32);
            EXPECT_EQ(v, i);
        }
    });
    EXPECT_GT(rig.machine->stats().get("dir.writebacks"), 0u);
    EXPECT_TRUE(rig.mem->quiescent());
}

TEST(DirNNB, ContendedBlockPingPong)
{
    // Two nodes alternately increment a remote counter under a lock;
    // final value proves every transition preserved the data.
    DirRig rig(3);
    Addr a = rig.mem->shmalloc(4096, 2);
    SimLock lock(rig.machine->eq(), rig.cp.lockLatency);
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 2)
            co_return;
        for (int i = 0; i < 25; ++i) {
            co_await lock.acquire(cpu);
            int v = co_await cpu.read<int>(a);
            co_await cpu.write<int>(a, v + 1);
            lock.release(cpu);
        }
    });
    int out = 0;
    rig.mem->peek(a, &out, 4);
    EXPECT_EQ(out, 50);
    EXPECT_TRUE(rig.mem->quiescent());
}

TEST(DirNNB, ManyNodesFalseSharingStorm)
{
    // All nodes write distinct words of the same block repeatedly:
    // worst-case invalidation traffic; data must survive.
    DirRig rig(8);
    Addr a = rig.mem->shmalloc(4096, 0);
    DirRig* r = &rig;
    rig.run([&, r](Cpu& cpu) -> Task<void> {
        for (int round = 0; round < 4; ++round) {
            co_await cpu.write<int>(a + cpu.id() * 4, //
                                    100 * round + cpu.id());
            co_await r->machine->barrier().wait(cpu);
        }
    });
    for (int i = 0; i < 8; ++i) {
        int out = 0;
        rig.mem->peek(a + i * 4, &out, 4);
        EXPECT_EQ(out, 300 + i);
    }
    EXPECT_TRUE(rig.mem->quiescent());
}

TEST(DirNNB, AccessCrossingBlockBoundaryPanics)
{
    DirRig rig(1);
    Addr a = rig.mem->shmalloc(4096, 0);
    EXPECT_ANY_THROW(rig.run([&](Cpu& cpu) -> Task<void> {
        co_await cpu.read<std::uint64_t>(a + 28); // spans 32B boundary
    }));
}

} // namespace
} // namespace tt
