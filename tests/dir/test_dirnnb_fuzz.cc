/**
 * @file
 * Property/fuzz tests of the DirNNB protocol against a flat reference
 * memory.
 *
 * Serial mode: nodes take turns (token-passing via barrier episodes is
 * overkill; we sequence operations through a driver node order) so
 * every operation completes before the next begins — any coherence bug
 * becomes a direct data mismatch.
 *
 * Concurrent mode: per-phase owner-computes random traffic with
 * barriers between phases — exercises racing requests, recalls,
 * writebacks, and invalidation storms; checks phase-wise values and
 * final directory invariants.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "mem/addr.hh"
#include "sim/random.hh"
#include "tests/helpers.hh"

namespace tt
{
namespace
{

using test::DirRig;

struct Op
{
    int node;
    Addr addr;
    bool isWrite;
    std::uint32_t value;
};

/** Serial random-op fuzz: one op at a time, strict reference check. */
void
serialFuzz(std::uint64_t seed, int nodes, int blocks,
           std::uint64_t cache_size)
{
    CoreParams cp;
    cp.cacheSize = cache_size;
    DirRig rig(nodes, cp);
    const Addr base = rig.mem->shmalloc(
        static_cast<std::size_t>(blocks) * 32 + 4096);

    Rng rng(seed);
    std::vector<Op> ops;
    std::map<Addr, std::uint32_t> ref;
    for (int i = 0; i < 2000; ++i) {
        Op op;
        op.node = static_cast<int>(rng.below(nodes));
        op.addr = base + rng.below(blocks) * 32 +
                  rng.below(8) * 4; // word within block
        op.isWrite = rng.chance(0.45);
        op.value = static_cast<std::uint32_t>(rng.next());
        ops.push_back(op);
    }

    // Execute strictly serially: a driver loop where each op's owner
    // performs it while everyone else waits at a barrier "turnstile".
    // Simpler and equivalent: every node walks the op list; only the
    // op's owner acts; a barrier separates consecutive ops.
    std::vector<std::uint32_t> observed(ops.size(), 0);
    DirRig* r = &rig;
    rig.run([&, r](Cpu& cpu) -> Task<void> {
        for (std::size_t i = 0; i < ops.size(); ++i) {
            const Op& op = ops[i];
            if (op.node == cpu.id()) {
                if (op.isWrite)
                    co_await cpu.write<std::uint32_t>(op.addr, op.value);
                else
                    observed[i] =
                        co_await cpu.read<std::uint32_t>(op.addr);
            }
            co_await r->machine->barrier().wait(cpu);
        }
    });

    // Check against the reference.
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const Op& op = ops[i];
        if (op.isWrite) {
            ref[op.addr] = op.value;
        } else {
            const auto it = ref.find(op.addr);
            const std::uint32_t expect =
                it == ref.end() ? 0 : it->second;
            EXPECT_EQ(observed[i], expect)
                << "op " << i << " node " << op.node << " addr "
                << std::hex << op.addr;
        }
    }
    EXPECT_TRUE(rig.mem->quiescent());

    // Final memory image must match the reference.
    for (const auto& [addr, val] : ref) {
        std::uint32_t out = 0;
        rig.mem->peek(addr, &out, 4);
        EXPECT_EQ(out, val);
    }
}

TEST(DirNNBFuzz, SerialSmallCacheFewBlocks)
{
    // Tiny cache + few blocks = constant evictions, recalls, upgrades.
    serialFuzz(/*seed=*/1, /*nodes=*/4, /*blocks=*/8,
               /*cache=*/256);
}

TEST(DirNNBFuzz, SerialManyNodes)
{
    serialFuzz(2, 8, 16, 1024);
}

TEST(DirNNBFuzz, SerialLargeCache)
{
    serialFuzz(3, 4, 64, 64 * 1024);
}

TEST(DirNNBFuzz, ConcurrentOwnerComputePhases)
{
    // Each phase: every node writes a random subset of "its" words,
    // then after a barrier reads a random subset of everyone's words
    // written in previous phases. DRF by construction.
    const int nodes = 8;
    const int wordsPerNode = 64;
    CoreParams cp;
    cp.cacheSize = 1024; // force heavy capacity traffic
    DirRig rig(nodes, cp);
    const Addr base =
        rig.mem->shmalloc(nodes * wordsPerNode * 4 + 4096);

    // expected[n][w] = value after each phase (host-side mirror).
    std::vector<std::vector<std::uint32_t>> expected(
        nodes, std::vector<std::uint32_t>(wordsPerNode, 0));

    const int phases = 6;
    DirRig* r = &rig;
    std::atomic<int> failures{0};
    rig.run([&, r](Cpu& cpu) -> Task<void> {
        Rng rng(1000 + cpu.id());
        for (int ph = 0; ph < phases; ++ph) {
            // Write my words.
            for (int w = 0; w < wordsPerNode; ++w) {
                if (rng.chance(0.5)) {
                    const std::uint32_t v =
                        (ph + 1) * 1000u + cpu.id() * 100u + w;
                    expected[cpu.id()][w] = v;
                    co_await cpu.write<std::uint32_t>(
                        base + (cpu.id() * wordsPerNode + w) * 4, v);
                }
            }
            co_await r->machine->barrier().wait(cpu);
            // Read random words of everyone; compare to mirror.
            for (int k = 0; k < 32; ++k) {
                const int n = static_cast<int>(rng.below(nodes));
                const int w =
                    static_cast<int>(rng.below(wordsPerNode));
                const std::uint32_t v =
                    co_await cpu.read<std::uint32_t>(
                        base + (n * wordsPerNode + w) * 4);
                if (v != expected[n][w])
                    ++failures;
            }
            co_await r->machine->barrier().wait(cpu);
        }
    });
    EXPECT_EQ(failures.load(), 0);
    EXPECT_TRUE(rig.mem->quiescent());
}

TEST(DirNNBFuzz, DeterministicAcrossRuns)
{
    auto runOnce = [](std::uint64_t seed) {
        CoreParams cp;
        cp.cacheSize = 512;
        cp.seed = seed;
        DirRig rig(4, cp);
        const Addr base = rig.mem->shmalloc(64 * 32);
        DirRig* r = &rig;
        auto res = rig.run([&, r](Cpu& cpu) -> Task<void> {
            Rng rng(7 + cpu.id());
            for (int i = 0; i < 200; ++i) {
                const Addr a =
                    base + (cpu.id() * 16 + rng.below(16)) * 32;
                if (rng.chance(0.5))
                    co_await cpu.write<int>(a, i);
                else
                    co_await cpu.read<int>(a);
            }
            co_await r->machine->barrier().wait(cpu);
        });
        return res.execTime;
    };
    EXPECT_EQ(runOnce(5), runOnce(5));
    EXPECT_NE(runOnce(5), 0u);
}

} // namespace
} // namespace tt
