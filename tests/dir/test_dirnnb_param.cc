/**
 * @file
 * Parameterized property sweeps for the DirNNB baseline, mirroring
 * the Stache sweeps: correctness across block sizes, cache sizes,
 * quantum settings, and machine widths, plus cost-model checks for
 * the dirty-remote and invalidation paths.
 */

#include <gtest/gtest.h>

#include <map>

#include "mem/addr.hh"
#include "sim/random.hh"
#include "tests/helpers.hh"

namespace tt
{
namespace
{

using test::DirRig;

struct SweepCfg
{
    std::uint32_t blockSize;
    std::uint64_t cacheSize;
    Tick quantum;
    int nodes;

    friend std::ostream&
    operator<<(std::ostream& os, const SweepCfg& c)
    {
        return os << "b" << c.blockSize << "_c" << c.cacheSize << "_q"
                  << c.quantum << "_n" << c.nodes;
    }
};

class DirSweep : public ::testing::TestWithParam<SweepCfg>
{
};

TEST_P(DirSweep, SerialFuzzMatchesReference)
{
    const SweepCfg cfg = GetParam();
    CoreParams cp;
    cp.blockSize = cfg.blockSize;
    cp.cacheSize = cfg.cacheSize;
    cp.quantum = cfg.quantum;
    DirRig rig(cfg.nodes, cp);

    const int blocks = 24;
    const Addr base =
        rig.mem->shmalloc(blocks * cfg.blockSize + 4096);

    struct Op
    {
        int node;
        Addr addr;
        bool isWrite;
        std::uint32_t value;
    };
    Rng rng(cfg.blockSize * 733 + cfg.nodes);
    std::vector<Op> ops;
    for (int i = 0; i < 600; ++i) {
        ops.push_back(Op{static_cast<int>(rng.below(cfg.nodes)),
                         base + rng.below(blocks) * cfg.blockSize +
                             rng.below(cfg.blockSize / 4) * 4,
                         rng.chance(0.45),
                         static_cast<std::uint32_t>(rng.next())});
    }

    std::vector<std::uint32_t> observed(ops.size(), 0);
    DirRig* r = &rig;
    rig.run([&, r](Cpu& cpu) -> Task<void> {
        for (std::size_t i = 0; i < ops.size(); ++i) {
            if (ops[i].node == cpu.id()) {
                if (ops[i].isWrite)
                    co_await cpu.write<std::uint32_t>(ops[i].addr,
                                                      ops[i].value);
                else
                    observed[i] = co_await cpu.read<std::uint32_t>(
                        ops[i].addr);
            }
            co_await r->machine->barrier().wait(cpu);
        }
    });

    std::map<Addr, std::uint32_t> ref;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].isWrite)
            ref[ops[i].addr] = ops[i].value;
        else {
            auto it = ref.find(ops[i].addr);
            ASSERT_EQ(observed[i], it == ref.end() ? 0 : it->second)
                << "op " << i;
        }
    }
    EXPECT_TRUE(rig.mem->quiescent());
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSpace, DirSweep,
    ::testing::Values(SweepCfg{32, 1024, 32, 4},
                      SweepCfg{64, 1024, 32, 4},
                      SweepCfg{128, 2048, 32, 4},
                      SweepCfg{32, 512, 0, 4},
                      SweepCfg{32, 1024, 128, 6},
                      SweepCfg{32, 4096, 32, 40},
                      SweepCfg{64, 65536, 32, 8}),
    [](const auto& info) {
        std::ostringstream oss;
        oss << info.param;
        return oss.str();
    });

TEST(DirNNBCost, DirtyRemoteReadPaysRecallRoundTrip)
{
    // Node 1 dirties a block homed at 0; node 2's read must cost a
    // clean remote miss plus the recall round trip through the home.
    DirRig rig(3);
    Addr a = rig.mem->shmalloc(4096, 0);
    Tick cleanMiss = 0, dirtyMiss = 0;
    DirRig* r = &rig;
    rig.run([&, r](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 1)
            co_await cpu.write<int>(a, 5);
        co_await r->machine->barrier().wait(cpu);
        if (cpu.id() == 2) {
            Tick t0 = cpu.localTime();
            co_await cpu.read<int>(a); // dirty at node 1
            dirtyMiss = cpu.localTime() - t0;
            t0 = cpu.localTime();
            co_await cpu.read<int>(a + 32); // clean at home
            cleanMiss = cpu.localTime() - t0;
        }
    });
    // Recall adds: inv processing (8+16) at the owner plus a
    // network round trip home<->owner plus block-receive handling.
    EXPECT_GT(dirtyMiss, cleanMiss + 2 * 12);
    EXPECT_LT(dirtyMiss, cleanMiss + 150);
}

TEST(DirNNBCost, InvalidationLatencyGrowsWithSharerCount)
{
    auto writeLatency = [](int readers) {
        DirRig rig(32);
        Addr a = rig.mem->shmalloc(4096, 0);
        Tick lat = 0;
        DirRig* r = &rig;
        rig.run([&, r, readers](Cpu& cpu) -> Task<void> {
            if (cpu.id() >= 1 && cpu.id() <= readers)
                co_await cpu.read<int>(a);
            co_await r->machine->barrier().wait(cpu);
            if (cpu.id() == 31) {
                const Tick t0 = cpu.localTime();
                co_await cpu.write<int>(a, 1);
                lat = cpu.localTime() - t0;
            }
            co_await r->machine->barrier().wait(cpu);
        });
        return lat;
    };
    const Tick l1 = writeLatency(1);
    const Tick l8 = writeLatency(8);
    const Tick l24 = writeLatency(24);
    EXPECT_GT(l8, l1);
    EXPECT_GT(l24, l8);
    // Invalidations fan out in parallel: growth is sub-linear (per
    // message directory occupancy, not per round trip).
    EXPECT_LT(l24 - l1, 24 * 40);
}

TEST(DirNNBCost, UpgradeCheaperThanFullWriteMiss)
{
    DirRig rig(2);
    Addr a = rig.mem->shmalloc(4096, 1);
    Tick upgrade = 0, full = 0;
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() != 0)
            co_return;
        co_await cpu.read<int>(a); // become sharer
        Tick t0 = cpu.localTime();
        co_await cpu.write<int>(a, 1); // dataless upgrade
        upgrade = cpu.localTime() - t0;
        t0 = cpu.localTime();
        co_await cpu.write<int>(a + 32, 2); // full write miss
        full = cpu.localTime() - t0;
    });
    EXPECT_LT(upgrade, full);
}

TEST(DirNNBCost, FirstTouchMakesOwnerAccessesLocal)
{
    DirParams dp;
    dp.firstTouch = true;
    DirRig rig(4, CoreParams{}, dp);
    Addr a = rig.mem->shmalloc(4 * 4096);
    rig.run([&](Cpu& cpu) -> Task<void> {
        const Addr mine = a + cpu.id() * 4096;
        co_await cpu.write<int>(mine, 1); // claims the page
        // Everything else on the page is now a local miss.
        const Tick t0 = cpu.localTime();
        for (int i = 1; i < 16; ++i)
            co_await cpu.read<int>(mine + i * 32);
        EXPECT_EQ(cpu.localTime() - t0, 15u * (1 + 29));
    });
    EXPECT_EQ(rig.machine->stats().get("dir.remote_misses"), 0u);
}

} // namespace
} // namespace tt
