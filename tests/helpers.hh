/**
 * @file
 * Shared test scaffolding: machine assembly for each target system
 * and a function-body App adapter.
 */

#ifndef TT_TESTS_HELPERS_HH
#define TT_TESTS_HELPERS_HH

#include <functional>
#include <memory>
#include <string>

#include "core/machine.hh"
#include "dir/dir_mem_system.hh"
#include "net/network.hh"
#include "stache/stache.hh"
#include "typhoon/typhoon_mem_system.hh"

#if defined(__SANITIZE_ADDRESS__)
#include <sanitizer/lsan_interface.h>
#endif

namespace tt::test
{

/**
 * Marks allocations made while in scope as expected leaks. Tests that
 * assert on a panic unwinding out of Machine::run abandon suspended
 * coroutine frames by design; LeakSanitizer must not fail them.
 */
struct ExpectLeaksInScope
{
    ExpectLeaksInScope()
    {
#if defined(__SANITIZE_ADDRESS__)
        __lsan_disable();
#endif
    }
    ~ExpectLeaksInScope()
    {
#if defined(__SANITIZE_ADDRESS__)
        __lsan_enable();
#endif
    }
};

/** App whose per-CPU body is a std::function. */
class FnApp : public App
{
  public:
    using Body = std::function<Task<void>(Cpu&)>;
    explicit FnApp(Body b) : _b(std::move(b)) {}
    std::string name() const override { return "fn"; }
    Task<void> body(Cpu& cpu) override { return _b(cpu); }

  private:
    Body _b;
};

/** A machine wired to a DirNNB memory system. */
struct DirRig
{
    CoreParams cp;
    DirParams dp;
    std::unique_ptr<Machine> machine;
    std::unique_ptr<Network> net;
    std::unique_ptr<DirMemSystem> mem;

    explicit DirRig(int nodes, CoreParams base = {}, DirParams dparams = {})
    {
        cp = base;
        cp.nodes = nodes;
        dp = dparams;
        machine = std::make_unique<Machine>(cp);
        net = std::make_unique<Network>(machine->eq(), nodes,
                                        NetworkParams{}, machine->stats());
        mem = std::make_unique<DirMemSystem>(*machine, *net, dp);
        machine->setMemSystem(mem.get());
    }

    RunResult
    run(FnApp::Body body)
    {
        FnApp app(std::move(body));
        return machine->run(app);
    }
};

/** A machine wired to Typhoon running the Stache protocol. */
struct StacheRig
{
    CoreParams cp;
    TyphoonParams tp;
    StacheParams sp;
    std::unique_ptr<Machine> machine;
    std::unique_ptr<Network> net;
    std::unique_ptr<TyphoonMemSystem> mem;
    std::unique_ptr<Stache> stache;

    explicit StacheRig(int nodes, CoreParams base = {},
                       TyphoonParams tparams = {},
                       StacheParams sparams = {})
    {
        cp = base;
        cp.nodes = nodes;
        tp = tparams;
        sp = sparams;
        machine = std::make_unique<Machine>(cp);
        net = std::make_unique<Network>(machine->eq(), nodes,
                                        NetworkParams{}, machine->stats());
        mem = std::make_unique<TyphoonMemSystem>(*machine, *net, tp);
        stache = std::make_unique<Stache>(*machine, *mem, sp);
        machine->setMemSystem(mem.get());
    }

    RunResult
    run(FnApp::Body body)
    {
        FnApp app(std::move(body));
        return machine->run(app);
    }
};

} // namespace tt::test

#endif // TT_TESTS_HELPERS_HH
