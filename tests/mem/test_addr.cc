/** @file Unit tests for address helpers. */

#include <gtest/gtest.h>

#include "mem/addr.hh"

namespace tt
{
namespace
{

TEST(Addr, IsPow2)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(32));
    EXPECT_TRUE(isPow2(4096));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(48));
}

TEST(Addr, Log2)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(32), 5u);
    EXPECT_EQ(log2i(4096), 12u);
}

TEST(Addr, AlignDownUp)
{
    EXPECT_EQ(alignDown(100, 32), 96u);
    EXPECT_EQ(alignDown(96, 32), 96u);
    EXPECT_EQ(alignUp(100, 32), 128u);
    EXPECT_EQ(alignUp(96, 32), 96u);
}

TEST(Addr, BlockAndPageDecomposition)
{
    const Addr a = 0x12345;
    EXPECT_EQ(blockAlign(a, 32), 0x12340u);
    EXPECT_EQ(pageNum(a, 4096), 0x12u);
    EXPECT_EQ(pageOffset(a, 4096), 0x345u);
    EXPECT_EQ(blockInPage(a, 4096, 32), 0x345u / 32);
}

TEST(Addr, WithinOneBlock)
{
    EXPECT_TRUE(withinOneBlock(0x100, 8, 32));
    EXPECT_TRUE(withinOneBlock(0x118, 8, 32)); // bytes 0x118..0x11f
    EXPECT_FALSE(withinOneBlock(0x11c, 8, 32)); // crosses 0x120
}

TEST(Addr, BlockInPageCoversWholePage)
{
    // 4K page, 32B blocks -> indices 0..127.
    EXPECT_EQ(blockInPage(0x1000, 4096, 32), 0u);
    EXPECT_EQ(blockInPage(0x1FFF, 4096, 32), 127u);
    // 128-byte blocks -> indices 0..31.
    EXPECT_EQ(blockInPage(0x1FFF, 4096, 128), 31u);
}

} // namespace
} // namespace tt
