/** @file Unit tests for the set-associative cache timing model. */

#include <gtest/gtest.h>

#include <set>

#include "mem/cache_model.hh"

namespace tt
{
namespace
{

CacheModel
smallCache()
{
    // 4 sets x 2 ways x 32B = 256 bytes.
    return CacheModel(256, 2, 32, 1);
}

TEST(CacheModel, MissesWhenEmpty)
{
    auto c = smallCache();
    EXPECT_FALSE(c.probeRead(0x1000));
    EXPECT_FALSE(c.probeWrite(0x1000));
    EXPECT_FALSE(c.present(0x1000));
}

TEST(CacheModel, FillThenHit)
{
    auto c = smallCache();
    auto r = c.fill(0x1000, LineState::Shared);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(r.victimValid);
    EXPECT_TRUE(c.probeRead(0x1000));
    EXPECT_TRUE(c.probeRead(0x101F)); // same block
    EXPECT_FALSE(c.probeRead(0x1020)); // next block
}

TEST(CacheModel, SharedLineRejectsWrites)
{
    auto c = smallCache();
    c.fill(0x40, LineState::Shared);
    EXPECT_TRUE(c.probeRead(0x40));
    EXPECT_FALSE(c.probeWrite(0x40));
    EXPECT_TRUE(c.presentShared(0x40));
}

TEST(CacheModel, OwnedLineAcceptsWritesAndDirties)
{
    auto c = smallCache();
    c.fill(0x40, LineState::Owned);
    EXPECT_TRUE(c.probeWrite(0x40));
    bool dirty = false;
    c.invalidate(0x40, &dirty);
    EXPECT_TRUE(dirty);
}

TEST(CacheModel, FillEvictsWithinSameSet)
{
    auto c = smallCache(); // 4 sets, 2 ways; set = (addr/32) % 4
    // Three blocks mapping to set 0: 0x000, 0x080, 0x100.
    c.fill(0x000, LineState::Shared);
    c.fill(0x080, LineState::Shared);
    auto r = c.fill(0x100, LineState::Shared);
    EXPECT_TRUE(r.victimValid);
    EXPECT_TRUE(r.victimAddr == 0x000 || r.victimAddr == 0x080);
    EXPECT_EQ(c.validLines(), 2u);
}

TEST(CacheModel, VictimReportsOwnedDirty)
{
    auto c = smallCache();
    c.fill(0x000, LineState::Owned);
    c.probeWrite(0x000); // dirty it
    c.fill(0x080, LineState::Owned);
    c.probeWrite(0x080);
    auto r = c.fill(0x100, LineState::Shared);
    ASSERT_TRUE(r.victimValid);
    EXPECT_TRUE(r.victimOwned);
    EXPECT_TRUE(r.victimDirty);
}

TEST(CacheModel, RefillUpdatesStateInPlace)
{
    auto c = smallCache();
    c.fill(0x40, LineState::Shared);
    auto r = c.fill(0x40, LineState::Owned);
    EXPECT_TRUE(r.hit);
    EXPECT_TRUE(c.probeWrite(0x40));
    EXPECT_EQ(c.validLines(), 1u);
}

TEST(CacheModel, InvalidateRemovesLine)
{
    auto c = smallCache();
    c.fill(0x40, LineState::Shared);
    EXPECT_EQ(c.invalidate(0x40), LineState::Shared);
    EXPECT_FALSE(c.present(0x40));
    EXPECT_EQ(c.invalidate(0x40), LineState::Invalid); // idempotent
}

TEST(CacheModel, DowngradeOwnedToShared)
{
    auto c = smallCache();
    c.fill(0x40, LineState::Owned);
    c.probeWrite(0x40);
    bool dirty = false;
    EXPECT_TRUE(c.downgrade(0x40, &dirty));
    EXPECT_TRUE(dirty);
    EXPECT_TRUE(c.presentShared(0x40));
    EXPECT_FALSE(c.probeWrite(0x40));
    EXPECT_FALSE(c.downgrade(0x40)); // already shared
}

TEST(CacheModel, UpgradeSharedToOwned)
{
    auto c = smallCache();
    c.fill(0x40, LineState::Shared);
    EXPECT_TRUE(c.upgrade(0x40, true));
    EXPECT_TRUE(c.probeWrite(0x40));
    EXPECT_FALSE(c.upgrade(0x999, false)); // absent line
}

TEST(CacheModel, FlushAllEmptiesCache)
{
    auto c = smallCache();
    c.fill(0x00, LineState::Shared);
    c.fill(0x20, LineState::Owned);
    c.flushAll();
    EXPECT_EQ(c.validLines(), 0u);
}

TEST(CacheModel, CapacityProperty)
{
    // Filling more distinct blocks than capacity keeps validLines at
    // capacity; random replacement never exceeds it.
    CacheModel c(4096, 4, 32, 7); // 128 lines
    for (Addr a = 0; a < 64 * 1024; a += 32)
        c.fill(a, LineState::Shared);
    EXPECT_EQ(c.validLines(), 4096u / 32);
}

TEST(CacheModel, Table2Geometry)
{
    // The paper's CPU cache: 4-way associative, 32-byte blocks.
    CacheModel c(256 * 1024, 4, 32, 3);
    EXPECT_EQ(c.numSets(), 256u * 1024 / 32 / 4);
    EXPECT_EQ(c.blockSize(), 32u);
}

} // namespace
} // namespace tt
