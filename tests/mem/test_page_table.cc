/** @file Unit tests for per-node page tables. */

#include <gtest/gtest.h>

#include "mem/page_table.hh"

namespace tt
{
namespace
{

TEST(PageTable, MapTranslateUnmap)
{
    PageTable pt(4096);
    pt.map(0x10000, 0x3000, /*mode=*/2);
    const PageMapping* m = pt.lookup(0x10ABC);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->ppage, 0x3000u);
    EXPECT_EQ(m->mode, 2);
    EXPECT_EQ(pt.translate(0x10ABC), 0x3ABCu);
    pt.unmap(0x10000);
    EXPECT_EQ(pt.lookup(0x10000), nullptr);
}

TEST(PageTable, ReverseTranslation)
{
    PageTable pt(4096);
    pt.map(0x20000, 0x7000, 0);
    Addr va = 0;
    EXPECT_TRUE(pt.reverse(0x7123, &va));
    EXPECT_EQ(va, 0x20123u);
    EXPECT_FALSE(pt.reverse(0x9000, &va));
}

TEST(PageTable, DoubleMapPanics)
{
    PageTable pt(4096);
    pt.map(0x1000, 0x2000, 0);
    EXPECT_ANY_THROW(pt.map(0x1000, 0x3000, 0));
    // Mapping the same physical page twice is also rejected (the
    // reverse map must stay a function).
    EXPECT_ANY_THROW(pt.map(0x4000, 0x2000, 0));
}

TEST(PageTable, UnmapUnmappedPanics)
{
    PageTable pt(4096);
    EXPECT_ANY_THROW(pt.unmap(0x1000));
}

TEST(PageTable, TranslateUnmappedPanics)
{
    PageTable pt(4096);
    EXPECT_ANY_THROW(pt.translate(0xABCD));
}

TEST(PageTable, SetModeUpdatesExistingMapping)
{
    PageTable pt(4096);
    pt.map(0x5000, 0x6000, 1);
    pt.setMode(0x5000, 4);
    EXPECT_EQ(pt.lookup(0x5000)->mode, 4);
}

TEST(PageTable, RemapAfterUnmap)
{
    PageTable pt(4096);
    pt.map(0x5000, 0x6000, 1);
    pt.unmap(0x5000);
    pt.map(0x5000, 0x8000, 3); // fresh mapping to a new frame
    EXPECT_EQ(pt.translate(0x5100), 0x8100u);
    EXPECT_EQ(pt.mappedPages(), 1u);
}

} // namespace
} // namespace tt
