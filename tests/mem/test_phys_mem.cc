/** @file Unit tests for simulated physical memory. */

#include <gtest/gtest.h>

#include <cstring>

#include "mem/phys_mem.hh"

namespace tt
{
namespace
{

TEST(PhysMem, AllocatedPagesAreZeroed)
{
    PhysMem m(4096);
    PAddr p = m.allocPage();
    for (int i = 0; i < 4096; i += 8)
        EXPECT_EQ(m.readT<std::uint64_t>(p + i), 0u);
}

TEST(PhysMem, ReadBackWrites)
{
    PhysMem m(4096);
    PAddr p = m.allocPage();
    m.writeT<double>(p + 64, 3.25);
    EXPECT_DOUBLE_EQ(m.readT<double>(p + 64), 3.25);

    const char text[] = "tempest";
    m.write(p + 100, text, sizeof(text));
    char out[sizeof(text)];
    m.read(p + 100, out, sizeof(text));
    EXPECT_STREQ(out, "tempest");
}

TEST(PhysMem, DistinctPagesDistinctStorage)
{
    PhysMem m(4096);
    PAddr a = m.allocPage();
    PAddr b = m.allocPage();
    EXPECT_NE(a / 4096, b / 4096);
    m.writeT<int>(a, 1);
    m.writeT<int>(b, 2);
    EXPECT_EQ(m.readT<int>(a), 1);
    EXPECT_EQ(m.readT<int>(b), 2);
}

TEST(PhysMem, FreeAndReuse)
{
    PhysMem m(4096);
    PAddr a = m.allocPage();
    m.writeT<int>(a, 77);
    m.freePage(a);
    EXPECT_FALSE(m.pageAllocated(a));
    PAddr b = m.allocPage(); // reuses the freed frame
    EXPECT_EQ(b, a);
    EXPECT_EQ(m.readT<int>(b), 0) << "reused page must be zeroed";
}

TEST(PhysMem, AccessToUnallocatedPanics)
{
    PhysMem m(4096);
    int v;
    EXPECT_ANY_THROW(m.read(0x5000, &v, 4));
}

TEST(PhysMem, CrossPageAccessPanics)
{
    PhysMem m(4096);
    PAddr p = m.allocPage();
    std::uint64_t v = 0;
    EXPECT_ANY_THROW(m.write(p + 4092, &v, 8));
}

TEST(PhysMem, DoubleFreeDetected)
{
    PhysMem m(4096);
    PAddr p = m.allocPage();
    m.freePage(p);
    EXPECT_ANY_THROW(m.freePage(p));
}

TEST(PhysMem, AllocatedPageCount)
{
    PhysMem m(4096);
    EXPECT_EQ(m.allocatedPages(), 0u);
    PAddr a = m.allocPage();
    m.allocPage();
    EXPECT_EQ(m.allocatedPages(), 2u);
    m.freePage(a);
    EXPECT_EQ(m.allocatedPages(), 1u);
}

} // namespace
} // namespace tt
