/** @file Unit tests for the fully-associative FIFO TLB model. */

#include <gtest/gtest.h>

#include "mem/tlb_model.hh"

namespace tt
{
namespace
{

TEST(TlbModel, MissThenHit)
{
    TlbModel tlb(4);
    EXPECT_FALSE(tlb.access(10));
    EXPECT_TRUE(tlb.access(10));
}

TEST(TlbModel, FifoEviction)
{
    TlbModel tlb(2);
    tlb.access(1);
    tlb.access(2);
    tlb.access(3); // evicts 1 (FIFO)
    EXPECT_TRUE(tlb.probe(2));
    EXPECT_TRUE(tlb.probe(3));
    EXPECT_FALSE(tlb.probe(1));
}

TEST(TlbModel, FifoNotLru)
{
    TlbModel tlb(2);
    tlb.access(1);
    tlb.access(2);
    tlb.access(1); // hit: must NOT refresh FIFO position
    tlb.access(3); // still evicts 1
    EXPECT_FALSE(tlb.probe(1));
    EXPECT_TRUE(tlb.probe(2));
}

TEST(TlbModel, InvalidateRemovesEntry)
{
    TlbModel tlb(4);
    tlb.access(5);
    tlb.invalidate(5);
    EXPECT_FALSE(tlb.probe(5));
    EXPECT_EQ(tlb.resident(), 0u);
    // Invalidating an absent entry is a no-op.
    tlb.invalidate(99);
}

TEST(TlbModel, InvalidateFreesFifoSlot)
{
    TlbModel tlb(2);
    tlb.access(1);
    tlb.access(2);
    tlb.invalidate(1);
    tlb.access(3); // must not evict 2: a slot was free
    EXPECT_TRUE(tlb.probe(2));
    EXPECT_TRUE(tlb.probe(3));
}

TEST(TlbModel, FlushEmptiesAll)
{
    TlbModel tlb(8);
    for (int i = 0; i < 8; ++i)
        tlb.access(i);
    tlb.flush();
    EXPECT_EQ(tlb.resident(), 0u);
    EXPECT_FALSE(tlb.access(3));
}

TEST(TlbModel, NeverExceedsCapacity)
{
    TlbModel tlb(64); // Table 2: 64 entries
    for (int i = 0; i < 1000; ++i)
        tlb.access(i);
    EXPECT_EQ(tlb.resident(), 64u);
}

} // namespace
} // namespace tt
