/** @file Unit tests for the unreliable-network fault model. */

#include <gtest/gtest.h>

#include <vector>

#include "net/fault_model.hh"
#include "net/network.hh"

namespace tt
{
namespace
{

Message
mkMsg(NodeId src, NodeId dst, HandlerId h = 1)
{
    Message m;
    m.src = src;
    m.dst = dst;
    m.handler = h;
    return m;
}

TEST(FaultSpec, ParsesEveryKey)
{
    const FaultParams p = parseFaultSpec(
        "drop=0.1,dup=0.05,reorder=0.2:32,partition=0.01:500,"
        "pause=0.02:200,cut=1-3,seed=99");
    EXPECT_DOUBLE_EQ(p.drop, 0.1);
    EXPECT_DOUBLE_EQ(p.dup, 0.05);
    EXPECT_DOUBLE_EQ(p.reorder, 0.2);
    EXPECT_EQ(p.reorderMax, 32u);
    EXPECT_DOUBLE_EQ(p.partition, 0.01);
    EXPECT_EQ(p.partitionMax, 500u);
    EXPECT_DOUBLE_EQ(p.pause, 0.02);
    EXPECT_EQ(p.pauseMax, 200u);
    EXPECT_EQ(p.seed, 99u);
    // cut=A-B severs both directions.
    ASSERT_EQ(p.cuts.size(), 2u);
    EXPECT_EQ(p.cuts[0], (std::pair<NodeId, NodeId>{1, 3}));
    EXPECT_EQ(p.cuts[1], (std::pair<NodeId, NodeId>{3, 1}));
    EXPECT_TRUE(p.any());
}

TEST(FaultSpec, RejectsBadInput)
{
    EXPECT_THROW(parseFaultSpec("drop=2"), std::runtime_error);
    EXPECT_THROW(parseFaultSpec("drop=-0.5"), std::runtime_error);
    EXPECT_THROW(parseFaultSpec("nonsense=1"), std::runtime_error);
    EXPECT_THROW(parseFaultSpec("drop"), std::runtime_error);
    EXPECT_THROW(parseFaultSpec("cut=5"), std::runtime_error);
    EXPECT_THROW(parseFaultSpec("reorder=0.1:0"), std::runtime_error);
    // A spec that injects nothing is a usage error, not a silent no-op.
    EXPECT_THROW(parseFaultSpec("drop=0,seed=3"), std::runtime_error);
    EXPECT_THROW(parseFaultSpec(""), std::runtime_error);
}

TEST(SeededFaultModel, SameSeedReplaysBitIdentically)
{
    FaultParams p;
    p.drop = 0.2;
    p.dup = 0.2;
    p.reorder = 0.3;
    p.partition = 0.05;
    p.pause = 0.05;
    p.seed = 42;

    StatSet s1, s2;
    SeededFaultModel a(4, p, s1);
    SeededFaultModel b(4, p, s2);
    for (int i = 0; i < 500; ++i) {
        const Message m = mkMsg(i % 4, (i + 1) % 4);
        const Tick when = static_cast<Tick>(i) * 7;
        const auto va = a.onMessage(m, when, when + 12);
        const auto vb = b.onMessage(m, when, when + 12);
        EXPECT_EQ(va.drop, vb.drop) << "at message " << i;
        EXPECT_EQ(va.arrive, vb.arrive) << "at message " << i;
        EXPECT_EQ(va.dupArrive, vb.dupArrive) << "at message " << i;
    }
    EXPECT_EQ(a.injected(), b.injected());
    EXPECT_GT(a.injected(), 0u);
}

TEST(SeededFaultModel, DifferentSeedsDiverge)
{
    FaultParams p;
    p.drop = 0.5;
    p.seed = 1;
    StatSet s1, s2;
    SeededFaultModel a(4, p, s1);
    p.seed = 2;
    SeededFaultModel b(4, p, s2);
    int differ = 0;
    for (int i = 0; i < 200; ++i) {
        const Message m = mkMsg(0, 1);
        differ += a.onMessage(m, i, i + 12).drop !=
                  b.onMessage(m, i, i + 12).drop;
    }
    EXPECT_GT(differ, 0);
}

TEST(SeededFaultModel, CutLinkDropsEveryMessageBothWaysOnly)
{
    FaultParams p;
    p.cuts = {{0, 1}, {1, 0}};
    p.seed = 5;
    StatSet stats;
    SeededFaultModel f(4, p, stats);
    EXPECT_TRUE(f.onMessage(mkMsg(0, 1), 0, 12).drop);
    EXPECT_TRUE(f.onMessage(mkMsg(1, 0), 0, 12).drop);
    EXPECT_FALSE(f.onMessage(mkMsg(2, 3), 0, 12).drop);
    EXPECT_FALSE(f.onMessage(mkMsg(0, 2), 0, 12).drop);
    EXPECT_EQ(stats.get("net.faults.partition_drops"), 2u);
}

TEST(SeededFaultModel, CertainDuplicationYieldsLaterSecondCopy)
{
    FaultParams p;
    p.dup = 1.0;
    p.seed = 9;
    StatSet stats;
    SeededFaultModel f(4, p, stats);
    const auto v = f.onMessage(mkMsg(0, 1), 0, 12);
    EXPECT_FALSE(v.drop);
    EXPECT_EQ(v.arrive, 12u);
    EXPECT_GT(v.dupArrive, v.arrive);
    EXPECT_EQ(stats.get("net.faults.dups"), 1u);
}

TEST(SeededFaultModel, ReorderDelaysWithinBound)
{
    FaultParams p;
    p.reorder = 1.0;
    p.reorderMax = 8;
    p.seed = 3;
    StatSet stats;
    SeededFaultModel f(4, p, stats);
    for (int i = 0; i < 100; ++i) {
        const auto v = f.onMessage(mkMsg(0, 1), 0, 12);
        EXPECT_GT(v.arrive, 12u);
        EXPECT_LE(v.arrive, 12u + 1 + 8);
    }
}

// Integration: a fault model on a real Network drops / duplicates
// actual deliveries, while fault-off behavior is untouched (the rest
// of this binary's Network tests run with no model attached).
struct FaultNetFixture : ::testing::Test
{
    EventQueue eq;
    StatSet stats;
    NetworkParams params{};
    Network net{eq, 4, params, stats};
    std::vector<std::pair<Tick, Message>> received;

    void
    SetUp() override
    {
        for (NodeId n = 0; n < 4; ++n) {
            net.setReceiver(n, [this](Message&& m) {
                received.emplace_back(eq.now(), std::move(m));
            });
        }
    }
};

TEST_F(FaultNetFixture, CertainDropSuppressesDelivery)
{
    FaultParams p;
    p.drop = 1.0;
    p.seed = 1;
    SeededFaultModel f(4, p, stats);
    net.setFaults(&f);
    net.send(mkMsg(0, 1), 0);
    eq.run();
    EXPECT_TRUE(received.empty());
    // The message was still charged to the fabric at the send side.
    EXPECT_EQ(stats.get("net.messages"), 1u);
    EXPECT_EQ(stats.get("net.faults.drops"), 1u);
}

TEST_F(FaultNetFixture, CertainDuplicationDeliversTwice)
{
    FaultParams p;
    p.dup = 1.0;
    p.seed = 1;
    SeededFaultModel f(4, p, stats);
    net.setFaults(&f);
    net.send(mkMsg(0, 1, 77), 0);
    eq.run();
    ASSERT_EQ(received.size(), 2u);
    EXPECT_EQ(received[0].second.handler, 77u);
    EXPECT_EQ(received[1].second.handler, 77u);
    EXPECT_GT(received[1].first, received[0].first);
}

TEST_F(FaultNetFixture, LocalMessagesAreNeverFaulted)
{
    FaultParams p;
    p.drop = 1.0;
    p.seed = 1;
    SeededFaultModel f(4, p, stats);
    net.setFaults(&f);
    net.send(mkMsg(2, 2), 0);
    eq.run();
    EXPECT_EQ(received.size(), 1u);
    EXPECT_EQ(stats.get("net.faults.drops"), 0u);
}

} // namespace
} // namespace tt
