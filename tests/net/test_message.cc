/** @file Unit tests for active-message framing. */

#include <gtest/gtest.h>

#include "net/message.hh"

namespace tt
{
namespace
{

TEST(Message, SizeAccounting)
{
    Message m;
    m.handler = 7;
    EXPECT_EQ(m.sizeWords(), 1u); // handler word only
    m.args = {1, 2, 3};
    EXPECT_EQ(m.sizeWords(), 4u);
    m.data.assign(32, 0); // one 32-byte block
    EXPECT_EQ(m.sizeWords(), 4u + 8u);
}

TEST(Message, DataRoundsUpToWords)
{
    Message m;
    m.data.assign(5, 0);
    EXPECT_EQ(m.sizeWords(), 1u + 2u);
}

TEST(Message, SinglePacketLimitIsTwentyWords)
{
    // Paper section 5.2: handler PC + 32-bit address + 64 bytes of
    // data + 2 spare words = 20 words = 1 packet.
    Message m;
    m.args = {0xAAAA, 0xBBBB, 0xCCCC}; // addr words + a status word
    m.data.assign(64, 0);
    EXPECT_EQ(m.sizeWords(), 20u);
    EXPECT_EQ(m.packets(), 1u);
}

TEST(Message, LargeMessagesSpanPackets)
{
    Message m;
    m.data.assign(128, 0); // a 128-byte block configuration
    EXPECT_EQ(m.sizeWords(), 33u);
    EXPECT_EQ(m.packets(), 2u);
}

TEST(Message, AddrArgRoundTrip)
{
    Message m;
    const std::uint64_t va = 0x1234'5678'9ABC'DEF0ULL;
    m.args.push_back(99);
    m.pushAddr(va);
    EXPECT_EQ(m.addrArg(1), va);
    EXPECT_EQ(m.args.size(), 3u);
}

TEST(Message, AddrArgOutOfRangePanics)
{
    Message m;
    m.args = {1};
    EXPECT_ANY_THROW(m.addrArg(0));
}

} // namespace
} // namespace tt
