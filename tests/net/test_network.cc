/** @file Unit tests for the interconnect model. */

#include <gtest/gtest.h>

#include <vector>

#include "net/network.hh"

namespace tt
{
namespace
{

struct NetFixture : ::testing::Test
{
    EventQueue eq;
    StatSet stats;
    NetworkParams params{};
    Network net{eq, 4, params, stats};

    std::vector<std::pair<Tick, Message>> received;

    void
    SetUp() override
    {
        for (NodeId n = 0; n < 4; ++n) {
            net.setReceiver(n, [this](Message&& m) {
                received.emplace_back(eq.now(), std::move(m));
            });
        }
    }

    Message
    makeMsg(NodeId src, NodeId dst, HandlerId h)
    {
        Message m;
        m.src = src;
        m.dst = dst;
        m.handler = h;
        return m;
    }
};

TEST_F(NetFixture, DeliversAfterLatencyPlusInjection)
{
    net.send(makeMsg(0, 1, 42), /*when=*/100);
    eq.run();
    ASSERT_EQ(received.size(), 1u);
    // 1 packet: inject 1 cycle, then 11 cycles latency.
    EXPECT_EQ(received[0].first, 100u + 1 + 11);
    EXPECT_EQ(received[0].second.handler, 42u);
}

TEST_F(NetFixture, LocalMessagesShortCircuitFabric)
{
    net.send(makeMsg(2, 2, 7), 50);
    eq.run();
    ASSERT_EQ(received.size(), 1u);
    EXPECT_EQ(received[0].first, 51u); // injection only, no latency
}

TEST_F(NetFixture, InjectionSerializesSameSource)
{
    net.send(makeMsg(0, 1, 1), 10);
    net.send(makeMsg(0, 2, 2), 10);
    net.send(makeMsg(0, 3, 3), 10);
    eq.run();
    ASSERT_EQ(received.size(), 3u);
    EXPECT_EQ(received[0].first, 10u + 1 + 11);
    EXPECT_EQ(received[1].first, 10u + 2 + 11);
    EXPECT_EQ(received[2].first, 10u + 3 + 11);
}

TEST_F(NetFixture, DistinctSourcesDoNotSerialize)
{
    net.send(makeMsg(0, 3, 1), 10);
    net.send(makeMsg(1, 3, 2), 10);
    eq.run();
    ASSERT_EQ(received.size(), 2u);
    EXPECT_EQ(received[0].first, received[1].first);
}

TEST_F(NetFixture, MultiPacketMessagesPayPerPacket)
{
    Message m = makeMsg(0, 1, 9);
    m.data.assign(128, 0); // 33 words -> 2 packets
    net.send(std::move(m), 0);
    eq.run();
    ASSERT_EQ(received.size(), 1u);
    EXPECT_EQ(received[0].first, 0u + 2 + 11);
}

TEST_F(NetFixture, MessageOrderPreservedBetweenPair)
{
    // FIFO between a fixed (src,dst) pair follows from deterministic
    // latency + injection serialization.
    for (int i = 0; i < 5; ++i)
        net.send(makeMsg(1, 2, static_cast<HandlerId>(i)), 20);
    eq.run();
    ASSERT_EQ(received.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(received[i].second.handler, static_cast<HandlerId>(i));
}

TEST_F(NetFixture, StatsCountTraffic)
{
    net.send(makeMsg(0, 1, 1), 0);
    Message m = makeMsg(1, 0, 2);
    m.vnet = VNet::Response;
    m.data.assign(32, 0);
    net.send(std::move(m), 0);
    eq.run();
    EXPECT_EQ(stats.get("net.messages"), 2u);
    EXPECT_EQ(stats.get("net.req_messages"), 1u);
    EXPECT_EQ(stats.get("net.resp_messages"), 1u);
    EXPECT_EQ(stats.get("net.words"), 1u + 9u);
}

TEST(NetContention, EjectionPortSerializesInboundPackets)
{
    EventQueue eq;
    StatSet stats;
    NetworkParams p;
    p.ejectPerPacket = 4;
    Network net(eq, 4, p, stats);
    std::vector<Tick> arrivals;
    for (NodeId n = 0; n < 4; ++n)
        net.setReceiver(n, [&](Message&&) {
            arrivals.push_back(eq.now());
        });
    // Three sources blast node 3 simultaneously.
    for (NodeId src = 0; src < 3; ++src) {
        Message m;
        m.src = src;
        m.dst = 3;
        m.handler = 1;
        net.send(std::move(m), 0);
    }
    eq.run();
    ASSERT_EQ(arrivals.size(), 3u);
    std::sort(arrivals.begin(), arrivals.end());
    // Base arrival 0+1+11=12 plus 4 eject; subsequent packets queue
    // 4 cycles apart.
    EXPECT_EQ(arrivals[0], 16u);
    EXPECT_EQ(arrivals[1], 20u);
    EXPECT_EQ(arrivals[2], 24u);
    EXPECT_EQ(stats.get("net.eject_queued"), 2u);
}

TEST(NetContention, ZeroEjectCostReproducesPaperModel)
{
    EventQueue eq;
    StatSet stats;
    Network net(eq, 2, NetworkParams{}, stats);
    std::vector<Tick> arrivals;
    net.setReceiver(1, [&](Message&&) { arrivals.push_back(eq.now()); });
    net.setReceiver(0, [](Message&&) {});
    for (int i = 0; i < 3; ++i) {
        Message m;
        m.src = 0;
        m.dst = 1;
        m.handler = 1;
        net.send(std::move(m), 0);
    }
    eq.run();
    // Only injection serialization (1 apart), no inbound queueing.
    ASSERT_EQ(arrivals.size(), 3u);
    EXPECT_EQ(arrivals[1] - arrivals[0], 1u);
    EXPECT_EQ(stats.get("net.eject_queued"), 0u);
}

TEST_F(NetFixture, PayloadIntegrity)
{
    Message m = makeMsg(3, 0, 5);
    m.args = {10, 20};
    m.data = {1, 2, 3, 4};
    net.send(std::move(m), 0);
    eq.run();
    ASSERT_EQ(received.size(), 1u);
    const Message& r = received[0].second;
    EXPECT_EQ(r.args, (Message::Args{10, 20}));
    EXPECT_EQ(r.data, (Message::Data{1, 2, 3, 4}));
    EXPECT_EQ(r.src, 3);
}

TEST_F(NetFixture, SendFromInvalidSourcePanics)
{
    // Injection occupancy is charged to the source link, so every
    // message must carry a real source node — there is no broadcast
    // or host-injection convention.
    EXPECT_THROW(net.send(makeMsg(kNoNode, 1, 1), 0), std::logic_error);
    EXPECT_THROW(net.send(makeMsg(4, 1, 1), 0), std::logic_error);
}

} // namespace
} // namespace tt
