/**
 * @file
 * Unit tests for the user-level reliable transport and the progress
 * watchdog. A scripted FaultModel forces exact loss/duplication/
 * reorder sequences, so each recovery path is pinned down
 * deterministically (no probabilities involved).
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "core/transport.hh"
#include "net/fault_model.hh"
#include "net/network.hh"
#include "sim/watchdog.hh"

namespace tt
{
namespace
{

/** Deterministic fault source: tests script the verdicts directly. */
struct ScriptedFaults final : FaultModel
{
    std::function<Verdict(const Message&, Tick, Tick)> judge;

    Verdict
    onMessage(const Message& m, Tick when, Tick arrive) override
    {
        if (judge)
            return judge(m, when, arrive);
        Verdict v;
        v.arrive = arrive;
        return v;
    }
};

struct TransportFixture : ::testing::Test
{
    EventQueue eq;
    StatSet stats;
    NetworkParams params{};
    Network net{eq, 4, params, stats};
    ReliableParams rp{};
    std::unique_ptr<ReliableTransport> tr;
    ScriptedFaults faults;
    std::vector<std::pair<Tick, Message>> received;

    /** Call after adjusting rp; wires transport + faults + receivers. */
    void
    attach()
    {
        tr = std::make_unique<ReliableTransport>(eq, net, rp, stats);
        net.setTransport(tr.get());
        net.setFaults(&faults);
        for (NodeId n = 0; n < 4; ++n) {
            net.setReceiver(n, [this](Message&& m) {
                received.emplace_back(eq.now(), std::move(m));
            });
        }
    }

    Message
    mkMsg(NodeId src, NodeId dst, HandlerId h = 1)
    {
        Message m;
        m.src = src;
        m.dst = dst;
        m.handler = h;
        return m;
    }
};

TEST_F(TransportFixture, CleanChannelDeliversOnceAndAcks)
{
    rp.rto = 50;
    attach();
    net.send(mkMsg(0, 1, 42), 0);
    eq.run();
    ASSERT_EQ(received.size(), 1u);
    EXPECT_EQ(received[0].second.handler, 42u);
    EXPECT_EQ(received[0].second.seq, 1u);
    EXPECT_EQ(received[0].second.tkind, TKind::Data);
    EXPECT_EQ(stats.get("net.acks"), 1u);
    EXPECT_EQ(stats.get("net.retransmits"), 0u);
    EXPECT_EQ(tr->oldestUnackedSince(), kTickMax);
}

TEST_F(TransportFixture, LostDataIsRetransmitted)
{
    rp.rto = 50;
    attach();
    bool droppedOne = false;
    faults.judge = [&](const Message& m, Tick, Tick arrive) {
        FaultModel::Verdict v;
        v.arrive = arrive;
        if (m.tkind == TKind::Data && !droppedOne) {
            droppedOne = true;
            v.drop = true;
        }
        return v;
    };
    net.send(mkMsg(0, 1, 42), 0);
    eq.run();
    ASSERT_EQ(received.size(), 1u);
    EXPECT_EQ(stats.get("net.retransmits"), 1u);
    // Retransmission waited out one full RTO.
    EXPECT_GT(received[0].first, 50u);
    EXPECT_EQ(tr->oldestUnackedSince(), kTickMax);
}

TEST_F(TransportFixture, LostAckRepairedByDataRetransmission)
{
    rp.rto = 50;
    attach();
    bool droppedAck = false;
    faults.judge = [&](const Message& m, Tick, Tick arrive) {
        FaultModel::Verdict v;
        v.arrive = arrive;
        if (m.tkind == TKind::Ack && !droppedAck) {
            droppedAck = true;
            v.drop = true;
        }
        return v;
    };
    net.send(mkMsg(0, 1, 42), 0);
    eq.run();
    // Delivered exactly once: the retransmitted copy was recognized as
    // a duplicate and only re-acked.
    ASSERT_EQ(received.size(), 1u);
    EXPECT_EQ(stats.get("net.retransmits"), 1u);
    EXPECT_EQ(stats.get("net.dup_dropped"), 1u);
    EXPECT_EQ(stats.get("net.acks"), 2u);
    EXPECT_EQ(tr->oldestUnackedSince(), kTickMax);
}

TEST_F(TransportFixture, RetransmissionOfRetransmissionSucceeds)
{
    rp.rto = 20;
    attach();
    int dataDrops = 0;
    faults.judge = [&](const Message& m, Tick, Tick arrive) {
        FaultModel::Verdict v;
        v.arrive = arrive;
        if (m.tkind == TKind::Data && dataDrops < 2) {
            ++dataDrops;
            v.drop = true;
        }
        return v;
    };
    net.send(mkMsg(0, 1, 42), 0);
    eq.run();
    ASSERT_EQ(received.size(), 1u);
    EXPECT_EQ(stats.get("net.retransmits"), 2u);
    EXPECT_EQ(stats.get("net.dead_links"), 0u);
}

TEST_F(TransportFixture, BackoffDoublesAndCapsThenDeclaresDead)
{
    rp.rto = 4;
    rp.rtoMax = 8;
    rp.maxRetries = 5;
    attach();
    std::vector<Tick> dataSendTimes;
    faults.judge = [&](const Message& m, Tick when, Tick arrive) {
        FaultModel::Verdict v;
        v.arrive = arrive;
        if (m.tkind == TKind::Data) {
            dataSendTimes.push_back(when);
            v.drop = true; // black-hole every data copy
        }
        return v;
    };
    net.send(mkMsg(0, 1, 42), 0);
    eq.run();
    EXPECT_TRUE(received.empty());
    EXPECT_EQ(stats.get("net.retransmits"), 5u);
    EXPECT_EQ(stats.get("net.dead_links"), 1u);
    // Original + 5 retransmissions, spaced rto, 2*rto, then capped at
    // rtoMax: 0, +4, +8, +8, +8, +8.
    ASSERT_EQ(dataSendTimes.size(), 6u);
    const std::vector<Tick> expect{0, 4, 12, 20, 28, 36};
    EXPECT_EQ(dataSendTimes, expect);
    // The dead channel still reports its stalled head to the watchdog.
    EXPECT_EQ(tr->oldestUnackedSince(), 0u);
}

TEST_F(TransportFixture, DeadLinkListenerFiresAtRetryCap)
{
    rp.rto = 4;
    rp.rtoMax = 8;
    rp.maxRetries = 3;
    attach();
    faults.judge = [&](const Message& m, Tick, Tick arrive) {
        FaultModel::Verdict v;
        v.arrive = arrive;
        v.drop = m.tkind == TKind::Data; // black-hole every data copy
        return v;
    };
    std::vector<std::pair<NodeId, NodeId>> died;
    tr->setDeadLinkListener([&](NodeId s, NodeId d) {
        died.emplace_back(s, d);
    });
    net.send(mkMsg(0, 1, 42), 0);
    eq.run();
    // The listener names the exact data channel that hit the cap —
    // this is the recovery coordinator's crash-detection signal.
    ASSERT_EQ(died.size(), 1u);
    EXPECT_EQ(died[0].first, 0);
    EXPECT_EQ(died[0].second, 1);
    EXPECT_EQ(stats.get("net.dead_links"), 1u);
}

TEST_F(TransportFixture, LateAckRevivesDeadLink)
{
    rp.rto = 4;
    rp.rtoMax = 8;
    rp.maxRetries = 3;
    attach();
    // The first data copy is delivered but its ack is delayed far past
    // the retry cap; every retransmitted copy is black-holed. The
    // channel is declared dead, then the late ack arrives and revives
    // it (transport.cc handleAck).
    int seq1Copies = 0;
    faults.judge = [&](const Message& m, Tick, Tick arrive) {
        FaultModel::Verdict v;
        v.arrive = arrive;
        if (m.tkind == TKind::Data && m.seq == 1 && ++seq1Copies > 1)
            v.drop = true;
        if (m.tkind == TKind::Ack && m.seq == 1)
            v.arrive = arrive + 500;
        return v;
    };
    std::vector<std::pair<NodeId, NodeId>> died;
    tr->setDeadLinkListener([&](NodeId s, NodeId d) {
        died.emplace_back(s, d);
    });
    net.send(mkMsg(0, 1, 42), 0);
    eq.run();
    ASSERT_EQ(died.size(), 1u);
    EXPECT_EQ(stats.get("net.dead_links"), 1u);
    ASSERT_EQ(received.size(), 1u);
    // The late ack emptied the window: revived and idle again.
    EXPECT_EQ(tr->oldestUnackedSince(), kTickMax);

    // Post-revival traffic flows normally, with no second death.
    net.send(mkMsg(0, 1, 43), eq.now());
    eq.run();
    ASSERT_EQ(received.size(), 2u);
    EXPECT_EQ(received[1].second.handler, 43u);
    EXPECT_EQ(stats.get("net.dead_links"), 1u);
    EXPECT_EQ(died.size(), 1u);
    EXPECT_EQ(tr->oldestUnackedSince(), kTickMax);
}

TEST_F(TransportFixture, FabricDuplicateAfterAckIsSuppressed)
{
    rp.rto = 200;
    attach();
    bool dupped = false;
    faults.judge = [&](const Message& m, Tick, Tick arrive) {
        FaultModel::Verdict v;
        v.arrive = arrive;
        if (m.tkind == TKind::Data && !dupped) {
            dupped = true;
            v.dupArrive = arrive + 30; // well after the first copy acks
        }
        return v;
    };
    net.send(mkMsg(0, 1, 42), 0);
    eq.run();
    ASSERT_EQ(received.size(), 1u);
    EXPECT_EQ(stats.get("net.dup_dropped"), 1u);
    EXPECT_EQ(stats.get("net.retransmits"), 0u);
    // The duplicate was re-acked (duplicate ack is harmless).
    EXPECT_EQ(stats.get("net.acks"), 2u);
}

TEST_F(TransportFixture, ReorderedChannelIsRestoredToFifo)
{
    rp.rto = 100;
    attach();
    bool delayedFirst = false;
    faults.judge = [&](const Message& m, Tick, Tick arrive) {
        FaultModel::Verdict v;
        v.arrive = arrive;
        if (m.tkind == TKind::Data && m.seq == 1 && !delayedFirst) {
            delayedFirst = true;
            v.arrive = arrive + 40; // overtaken by seq 2
        }
        return v;
    };
    net.send(mkMsg(0, 1, 100), 0); // seq 1, delayed
    net.send(mkMsg(0, 1, 200), 0); // seq 2, arrives first
    eq.run();
    // seq 2 arrived early -> dropped out-of-order; seq 1 delivered on
    // its delayed arrival; seq 2 re-delivered by retransmission. The
    // protocol above sees strict FIFO: handler 100 then handler 200.
    ASSERT_EQ(received.size(), 2u);
    EXPECT_EQ(received[0].second.handler, 100u);
    EXPECT_EQ(received[1].second.handler, 200u);
    EXPECT_EQ(stats.get("net.ooo_dropped"), 1u);
    EXPECT_EQ(stats.get("net.retransmits"), 1u);
    EXPECT_EQ(tr->oldestUnackedSince(), kTickMax);
}

TEST_F(TransportFixture, WatchdogTripsOnPermanentlyCutLink)
{
    rp.rto = 4;
    rp.rtoMax = 8;
    rp.maxRetries = 3;
    attach();
    faults.judge = [&](const Message& m, Tick, Tick arrive) {
        FaultModel::Verdict v;
        v.arrive = arrive;
        v.drop = m.src == 0 && m.dst == 1; // one-way permanent cut
        return v;
    };
    Tick tripOldest = kTickMax;
    Watchdog wd(
        eq, /*horizon=*/1000, [&] { return tr->oldestUnackedSince(); },
        [&](Tick oldest, Tick) { tripOldest = oldest; });
    wd.arm();
    net.send(mkMsg(0, 1, 42), 0);
    EXPECT_THROW(eq.run(), WatchdogTimeout);
    EXPECT_TRUE(received.empty());
    EXPECT_EQ(stats.get("net.dead_links"), 1u);
    EXPECT_EQ(tripOldest, 0u);
    EXPECT_EQ(wd.trips(), 1u);
}

TEST_F(TransportFixture, WatchdogDrainsSilentlyOnCleanRun)
{
    rp.rto = 50;
    attach();
    Watchdog wd(eq, 1000, [&] { return tr->oldestUnackedSince(); });
    wd.arm();
    net.send(mkMsg(0, 1, 42), 0);
    net.send(mkMsg(1, 2, 43), 5);
    EXPECT_NO_THROW(eq.run());
    EXPECT_EQ(received.size(), 2u);
    EXPECT_EQ(wd.trips(), 0u);
}

TEST_F(TransportFixture, ChannelsSequenceIndependently)
{
    rp.rto = 50;
    attach();
    net.send(mkMsg(0, 1, 1), 0);
    net.send(mkMsg(0, 2, 2), 0);
    net.send(mkMsg(0, 1, 3), 0);
    net.send(mkMsg(3, 1, 4), 0);
    eq.run();
    ASSERT_EQ(received.size(), 4u);
    // Per-(src,dst) sequence spaces: 0->1 used 1,2; 0->2 and 3->1
    // each started fresh at 1.
    int seq1count = 0;
    for (const auto& [tick, m] : received)
        seq1count += m.seq == 1;
    EXPECT_EQ(seq1count, 3);
    EXPECT_EQ(stats.get("net.acks"), 4u);
}

TEST_F(TransportFixture, LocalMessagesBypassTransport)
{
    rp.rto = 50;
    attach();
    net.send(mkMsg(2, 2, 9), 0);
    eq.run();
    ASSERT_EQ(received.size(), 1u);
    EXPECT_EQ(received[0].second.tkind, TKind::None);
    EXPECT_EQ(received[0].second.seq, 0u);
    EXPECT_EQ(stats.get("net.acks"), 0u);
}

} // namespace
} // namespace tt
