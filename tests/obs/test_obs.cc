/**
 * @file
 * Flight-recorder tests (DESIGN.md §9): ring retention semantics,
 * causal send/deliver id pairing, trace determinism (same seed and
 * config => byte-identical Perfetto JSON on every target system),
 * zero impact of tracing on simulated results, miss-latency profiler
 * sanity, and the crash tail in failure reports.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "apps/workloads.hh"
#include "config/builders.hh"
#include "obs/profiler.hh"
#include "tests/helpers.hh"

namespace tt
{
namespace
{

using test::FnApp;

std::string
slurp(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    std::ostringstream oss;
    oss << f.rdbuf();
    return oss.str();
}

/** A scratch file removed on scope exit. */
struct TempFile
{
    std::string path;
    explicit TempFile(const std::string& p) : path(p) {}
    ~TempFile() { std::remove(path.c_str()); }
};

MachineConfig
smallConfig()
{
    MachineConfig cfg;
    cfg.core.nodes = 8;
    return cfg;
}

TargetMachine
buildSystem(const std::string& system, const MachineConfig& cfg)
{
    if (system == "dirnnb")
        return buildDirNNB(cfg);
    if (system == "stache")
        return buildTyphoonStache(cfg);
    if (system == "migratory")
        return buildTyphoonMigratory(cfg);
    return buildTyphoonEm3dUpdate(cfg);
}

RunResult
runEm3d(TargetMachine& t, const std::string& system)
{
    if (system == "update") {
        Em3dApp app(em3dParams(DataSet::Tiny, 0.2, 8),
                    Em3dApp::Mode::Update, t.em3d);
        return t.run(app);
    }
    Em3dApp app(em3dParams(DataSet::Tiny, 0.2, 8));
    return t.run(app);
}

// --- ring / recorder units --------------------------------------------

TEST(ObsRecorder, RingKeepsNewestOldestFirst)
{
    FlightRecorder rec(1, 4);
    for (Tick t = 1; t <= 10; ++t)
        rec.resume(0, t);
    EXPECT_EQ(rec.recordCount(), 10u);
    const auto ring = rec.ringOf(0);
    ASSERT_EQ(ring.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(ring[i].tick, Tick(7 + i));
        EXPECT_EQ(ring[i].kind, RecKind::Resume);
    }
}

TEST(ObsRecorder, RingIsPartialBeforeWrap)
{
    FlightRecorder rec(2, 8);
    rec.resume(1, 5);
    rec.resume(1, 6);
    EXPECT_TRUE(rec.ringOf(0).empty());
    const auto ring = rec.ringOf(1);
    ASSERT_EQ(ring.size(), 2u);
    EXPECT_EQ(ring[0].tick, 5u);
    EXPECT_EQ(ring[1].tick, 6u);
}

TEST(ObsRecorder, MsgSendStampsMonotonicCausalIds)
{
    FlightRecorder rec(2, 8);
    Message m;
    m.src = 0;
    m.dst = 1;
    rec.msgSend(m, 10, 21);
    EXPECT_EQ(m.obsId, 1u);
    rec.msgSend(m, 12, 23);
    EXPECT_EQ(m.obsId, 2u);
    EXPECT_EQ(rec.lastMsgId(), 2u);
}

TEST(ObsRecorder, HandlerNamesAndFallback)
{
    FlightRecorder rec(1, 4);
    rec.nameHandler(7, "proto.fetch");
    EXPECT_STREQ(rec.handlerName(7), "proto.fetch");
    EXPECT_STREQ(rec.handlerName(9), "handler_9");
    // Fallback names are cached: repeated queries return the same
    // stable storage.
    EXPECT_EQ(rec.handlerName(9), rec.handlerName(9));
}

TEST(ObsRecorder, DumpTailIsDeterministicText)
{
    FlightRecorder rec(1, 8);
    Message m;
    m.src = 0;
    m.dst = 0;
    m.handler = 3;
    rec.nameHandler(3, "x.y");
    rec.msgSend(m, 100, 111);
    rec.msgDeliver(0, m, 111);
    rec.tagChange(0, 0x1000, 2, 115);
    std::ostringstream a, b;
    rec.dumpTail(a);
    rec.dumpTail(b);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_NE(a.str().find("x.y"), std::string::npos);
    EXPECT_NE(a.str().find("msg=1"), std::string::npos);
    EXPECT_NE(a.str().find("node 0"), std::string::npos);
}

// --- whole-system properties ------------------------------------------

TEST(ObsTrace, ByteIdenticalAcrossRunsAllSystems)
{
    for (const char* system :
         {"dirnnb", "stache", "migratory", "update"}) {
        std::string first;
        for (int run = 0; run < 2; ++run) {
            TempFile tf(std::string("obs_det_") + system + ".json");
            MachineConfig cfg = smallConfig();
            cfg.obs.enable = true;
            cfg.obs.traceFile = tf.path;
            TargetMachine t = buildSystem(system, cfg);
            runEm3d(t, system);
            t.obs->finalize();
            const std::string bytes = slurp(tf.path);
            ASSERT_FALSE(bytes.empty()) << system;
            if (run == 0)
                first = bytes;
            else
                EXPECT_EQ(first, bytes)
                    << system << ": trace not deterministic";
        }
    }
}

TEST(ObsTrace, TracingDoesNotChangeSimulatedResults)
{
    for (const char* system : {"dirnnb", "stache"}) {
        TargetMachine bare = buildSystem(system, smallConfig());
        const RunResult r0 = runEm3d(bare, system);

        TempFile tf(std::string("obs_off_") + system + ".json");
        MachineConfig cfg = smallConfig();
        cfg.obs.enable = true;
        cfg.obs.traceFile = tf.path;
        cfg.obs.samplePeriod = 1000;
        TargetMachine traced = buildSystem(system, cfg);
        const RunResult r1 = runEm3d(traced, system);

        EXPECT_EQ(r0.execTime, r1.execTime) << system;
        EXPECT_EQ(r0.events, r1.events) << system;
    }
}

TEST(ObsTrace, EveryDeliverPairsWithASend)
{
    // Huge rings so nothing is evicted, then check that the set of
    // delivered causal ids is a subset of the sent ids on every node.
    MachineConfig cfg = smallConfig();
    cfg.obs.enable = true;
    cfg.obs.ringCapacity = 1u << 20;
    TargetMachine t = buildTyphoonStache(cfg);
    runEm3d(t, "stache");

    std::set<std::uint32_t> sent, delivered;
    for (NodeId n = 0; n < t.obs->nodes(); ++n) {
        for (const TraceRecord& r : t.obs->ringOf(n)) {
            if (r.kind == RecKind::MsgSend)
                sent.insert(r.id);
            else if (r.kind == RecKind::MsgDeliver)
                delivered.insert(r.id);
        }
    }
    ASSERT_FALSE(sent.empty());
    EXPECT_EQ(sent.size(), delivered.size());
    EXPECT_TRUE(sent == delivered);
    // Ids are dense: the highest id equals the number of sends.
    EXPECT_EQ(*sent.rbegin(), t.obs->lastMsgId());
}

TEST(ObsProfiler, MissHistogramsAreCoherent)
{
    MachineConfig cfg = smallConfig();
    cfg.obs.enable = true; // profiler on by default when obs enabled
    TargetMachine t = buildTyphoonStache(cfg);
    runEm3d(t, "stache");

    StatSet& s = t.machine->stats();
    const auto& total = s.histogram("obs.miss.read.total").summary();
    ASSERT_GT(total.count(), 0u);
    // Every closed miss samples all five histograms.
    for (const char* part :
         {"request", "network", "dir_occupancy", "handler"}) {
        const auto& comp =
            s.histogram(std::string("obs.miss.read.") + part)
                .summary();
        EXPECT_EQ(comp.count(), total.count()) << part;
        // Components attribute pieces of the total; their means can
        // never exceed it.
        EXPECT_LE(comp.mean(), total.mean()) << part;
    }
    // A remote miss costs at least a network round trip.
    EXPECT_GE(total.min(), 2 * NetworkParams{}.latency);
}

TEST(ObsCrash, ViolationReportIncludesRecorderTail)
{
    MachineConfig cfg = smallConfig();
    cfg.core.nodes = 2;
    cfg.check.enable = true; // rings attach even without --trace
    cfg.stache.faultSkipDowngrade = true;
    TargetMachine t = buildTyphoonStache(cfg);
    Addr a = t.protocol->shmalloc(4096, 0);
    FnApp app([&t, a](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 1)
            co_await cpu.write<int>(a, 42);
        co_await t.m().barrier().wait(cpu);
        if (cpu.id() == 0)
            co_await cpu.read<int>(a);
    });
    t.run(app);
    t.checker->finalize();
    ASSERT_FALSE(t.checker->violations().empty());

    ASSERT_NE(t.obs, nullptr);
    std::ostringstream oss;
    t.obs->dumpTail(oss);
    const std::string tail = oss.str();
    // The tail shows the causal history: the write's protocol
    // traffic and tag changes that led to the stale read.
    EXPECT_NE(tail.find("node 0"), std::string::npos);
    EXPECT_NE(tail.find("node 1"), std::string::npos);
    EXPECT_NE(tail.find("stache.get_rw"), std::string::npos);
    EXPECT_NE(tail.find("tag"), std::string::npos);
}

TEST(ObsConfig, RecorderAbsentWhenDisabled)
{
    TargetMachine t = buildTyphoonStache(smallConfig());
    EXPECT_EQ(t.obs, nullptr);
}

} // namespace
} // namespace tt
