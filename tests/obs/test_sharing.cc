/**
 * @file
 * SharingAnalyzer tests (DESIGN.md §11): the per-block access-pattern
 * classifier on synthetic record streams, the false-sharing detector,
 * heatmap histogram boundary semantics, the protocol advisor, report
 * determinism (byte-identical across identical runs), zero impact of
 * analysis on simulated results, and LatencyProfiler::openMisses()
 * when an app ends mid-miss.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "apps/workloads.hh"
#include "config/builders.hh"
#include "obs/profiler.hh"
#include "obs/recorder.hh"
#include "obs/sharing.hh"

namespace tt
{
namespace
{

constexpr Addr kBase = 0x4000'0000;

TraceRecord
accessRec(NodeId node, Addr va, std::uint32_t size, bool write)
{
    TraceRecord r;
    r.kind = RecKind::BlockAccess;
    r.addr = va;
    r.arg = size;
    r.node = node;
    r.sub = write ? 1 : 0;
    return r;
}

TraceRecord
invalRec(NodeId home, Addr blk, std::uint32_t fanout, InvKind kind)
{
    TraceRecord r;
    r.kind = RecKind::InvalSent;
    r.addr = blk;
    r.arg = fanout;
    r.node = home;
    r.sub = static_cast<std::uint8_t>(kind);
    return r;
}

TraceRecord
dirRec(NodeId home, Addr blk, std::uint8_t from, std::uint8_t to)
{
    TraceRecord r;
    r.kind = RecKind::DirTrans;
    r.addr = blk;
    r.arg = from;
    r.node = home;
    r.sub = to;
    return r;
}

TraceRecord
doneRec(NodeId node, Tick charged)
{
    TraceRecord r;
    r.kind = RecKind::HandlerDone;
    r.t2 = charged;
    r.node = node;
    return r;
}

// --- classifier --------------------------------------------------------

TEST(SharingClassify, UntouchedAndPrivate)
{
    SharingAnalyzer sa(4);
    EXPECT_EQ(sa.classifyBlock(kBase), SharePattern::Untouched);
    sa.fold(accessRec(2, kBase, 8, false));
    sa.fold(accessRec(2, kBase + 8, 8, true));
    EXPECT_EQ(sa.classifyBlock(kBase), SharePattern::Private);
}

TEST(SharingClassify, ReadOnly)
{
    SharingAnalyzer sa(4);
    for (NodeId n = 0; n < 4; ++n)
        sa.fold(accessRec(n, kBase, 8, false));
    EXPECT_EQ(sa.classifyBlock(kBase), SharePattern::ReadOnly);
}

TEST(SharingClassify, ProducerConsumerNeedsFanout)
{
    // One writer, two consumers, invalidation rounds that fan out to
    // both: a produced value serves multiple readers.
    SharingAnalyzer sa(4);
    for (int round = 0; round < 3; ++round) {
        sa.fold(accessRec(0, kBase, 8, true));
        sa.fold(invalRec(0, kBase, 2, InvKind::Inval));
        sa.fold(accessRec(1, kBase, 8, false));
        sa.fold(accessRec(2, kBase, 8, false));
    }
    EXPECT_EQ(sa.classifyBlock(kBase), SharePattern::ProducerConsumer);
}

TEST(SharingClassify, SingleWriterPairwiseBouncingIsWriteShared)
{
    // One writer, one bouncing consumer: every conflict round recalls
    // or invalidates a single copy — pairwise read-write interleaving.
    SharingAnalyzer sa(4);
    for (int round = 0; round < 4; ++round) {
        sa.fold(accessRec(0, kBase, 8, true));
        sa.fold(invalRec(0, kBase, 1, InvKind::Inval));
        sa.fold(accessRec(1, kBase, 8, false));
        sa.fold(invalRec(0, kBase, 1, InvKind::Recall));
    }
    EXPECT_EQ(sa.classifyBlock(kBase), SharePattern::WriteShared);
}

TEST(SharingClassify, SingleWriterUpdatePushesAreProducerConsumer)
{
    SharingAnalyzer sa(4);
    for (int round = 0; round < 3; ++round) {
        sa.fold(accessRec(0, kBase, 8, true));
        sa.fold(invalRec(0, kBase, 1, InvKind::Update));
        sa.fold(accessRec(3, kBase, 8, false));
    }
    EXPECT_EQ(sa.classifyBlock(kBase), SharePattern::ProducerConsumer);
}

TEST(SharingClassify, MigratoryHandoffChain)
{
    // Ownership hops 0 -> 1 -> 2 -> 3; between writes only the next
    // writer reads. The canonical migratory object.
    SharingAnalyzer sa(4);
    for (NodeId n = 0; n < 4; ++n) {
        sa.fold(accessRec(n, kBase, 8, false));
        sa.fold(accessRec(n, kBase, 8, true));
    }
    EXPECT_EQ(sa.classifyBlock(kBase), SharePattern::Migratory);
}

TEST(SharingClassify, MultiWriterInterleavedReadersIsWriteShared)
{
    // Two writers but every handoff happens with a third-party reader
    // in between: not migratory.
    SharingAnalyzer sa(4);
    for (int round = 0; round < 3; ++round) {
        sa.fold(accessRec(0, kBase, 8, true));
        sa.fold(accessRec(2, kBase, 8, false));
        sa.fold(accessRec(3, kBase, 8, false));
        sa.fold(accessRec(1, kBase, 8, true));
        sa.fold(accessRec(2, kBase, 8, false));
        sa.fold(accessRec(3, kBase, 8, false));
    }
    EXPECT_EQ(sa.classifyBlock(kBase), SharePattern::WriteShared);
}

// --- false sharing -----------------------------------------------------

TEST(SharingFalse, DisjointFootprintsWithConflictsAreFlagged)
{
    SharingAnalyzer sa(2);
    // Node 0 writes bytes [0,8), node 1 reads+writes bytes [16,24);
    // the copies still bounce through invalidations.
    for (int round = 0; round < 2; ++round) {
        sa.fold(accessRec(0, kBase, 8, true));
        sa.fold(invalRec(0, kBase, 1, InvKind::Inval));
        sa.fold(accessRec(1, kBase + 16, 8, true));
        sa.fold(invalRec(0, kBase, 1, InvKind::Recall));
    }
    const auto* b = sa.blockOf(kBase);
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(sa.falselyShared(*b));
    const auto s = sa.summarize();
    EXPECT_EQ(s.falseSharingBlocks, 1u);
    EXPECT_EQ(s.falseSharingInvals, 4u);
}

TEST(SharingFalse, OverlappingFootprintsAreTrueSharing)
{
    SharingAnalyzer sa(2);
    for (int round = 0; round < 2; ++round) {
        sa.fold(accessRec(0, kBase, 8, true));
        sa.fold(invalRec(0, kBase, 1, InvKind::Inval));
        sa.fold(accessRec(1, kBase, 8, false)); // reads written bytes
    }
    const auto* b = sa.blockOf(kBase);
    ASSERT_NE(b, nullptr);
    EXPECT_FALSE(sa.falselyShared(*b));
    EXPECT_EQ(sa.summarize().falseSharingBlocks, 0u);
}

TEST(SharingFalse, NoConflictRoundsNoFlag)
{
    // Disjoint footprints alone are fine — without invalidations
    // nobody paid for the colocation.
    SharingAnalyzer sa(2);
    sa.fold(accessRec(0, kBase, 8, true));
    sa.fold(accessRec(1, kBase + 16, 8, true));
    const auto* b = sa.blockOf(kBase);
    ASSERT_NE(b, nullptr);
    EXPECT_FALSE(sa.falselyShared(*b));
}

// --- heatmap histograms ------------------------------------------------

TEST(SharingHeatmap, FanoutHistogramBoundaries)
{
    // HomeStats::fanout has width 1.0 and 16 buckets: fan-out f lands
    // in bucket f, and f >= 16 overflows.
    SharingAnalyzer sa(4);
    sa.fold(invalRec(1, kBase, 0, InvKind::Inval));
    sa.fold(invalRec(1, kBase, 1, InvKind::Inval));
    sa.fold(invalRec(1, kBase, 15, InvKind::Inval));
    sa.fold(invalRec(1, kBase, 16, InvKind::Inval));
    sa.fold(invalRec(1, kBase, 100, InvKind::Inval));
    const auto& h = sa.homeOf(1);
    ASSERT_EQ(h.fanout.bucketCount(), 16u);
    EXPECT_EQ(h.fanout.buckets()[0], 1u);
    EXPECT_EQ(h.fanout.buckets()[1], 1u);
    EXPECT_EQ(h.fanout.buckets()[15], 1u);
    EXPECT_EQ(h.fanout.overflow(), 2u);
    EXPECT_EQ(h.invalRounds, 5u);
    EXPECT_EQ(h.fanoutMax, 100u);
    // Other homes untouched.
    EXPECT_EQ(sa.homeOf(0).invalRounds, 0u);
}

TEST(SharingHeatmap, OccupancyHistogramBoundaries)
{
    // HomeStats::busy has width 8.0 and 32 buckets: an activation of
    // t ticks lands in bucket t/8, [i*8, (i+1)*8) exactly.
    SharingAnalyzer sa(4);
    sa.fold(doneRec(2, 0));
    sa.fold(doneRec(2, 7));
    sa.fold(doneRec(2, 8));
    sa.fold(doneRec(2, 255));
    sa.fold(doneRec(2, 256));
    const auto& h = sa.homeOf(2);
    ASSERT_EQ(h.busy.bucketCount(), 32u);
    EXPECT_EQ(h.busy.buckets()[0], 2u);
    EXPECT_EQ(h.busy.buckets()[1], 1u);
    EXPECT_EQ(h.busy.buckets()[31], 1u);
    EXPECT_EQ(h.busy.overflow(), 1u);
    EXPECT_EQ(h.occupancy, 0u + 7 + 8 + 255 + 256);
}

TEST(SharingHeatmap, DirTransLearnsHomeAndCounts)
{
    SharingAnalyzer sa(4);
    sa.fold(dirRec(3, kBase, 0, 2));
    sa.fold(dirRec(3, kBase, 2, 0));
    EXPECT_EQ(sa.homeOf(3).dirTransitions, 2u);
}

// --- summary & advisor -------------------------------------------------

TEST(SharingSummary, DominantPattern)
{
    SharingAnalyzer sa(4);
    // Two read-only shared blocks, one private block.
    for (NodeId n = 0; n < 2; ++n) {
        sa.fold(accessRec(n, kBase, 8, false));
        sa.fold(accessRec(n, kBase + 32, 8, false));
    }
    sa.fold(accessRec(0, kBase + 64, 8, true));
    const auto s = sa.summarize();
    EXPECT_EQ(s.blocks, 3u);
    EXPECT_EQ(s.blocksByPattern[static_cast<int>(
                  SharePattern::ReadOnly)],
              2u);
    EXPECT_EQ(s.dominant(), SharePattern::ReadOnly);
}

TEST(SharingSummary, DominantFallsBackToPrivate)
{
    SharingAnalyzer sa(4);
    sa.fold(accessRec(0, kBase, 8, true));
    EXPECT_EQ(sa.summarize().dominant(), SharePattern::Private);
    EXPECT_EQ(SharingAnalyzer(4).summarize().dominant(),
              SharePattern::Untouched);
}

TEST(SharingAdvisor, MigratoryRegionRankedFirst)
{
    SharingAnalyzer sa(4, SharingParams{32, 4096});
    // Page 0: a migratory block with heavy handoff traffic.
    for (int round = 0; round < 8; ++round) {
        const NodeId n = round % 4;
        sa.fold(accessRec(n, kBase, 8, false));
        sa.fold(accessRec(n, kBase, 8, true));
        sa.fold(invalRec(0, kBase, 1, InvKind::Recall));
    }
    // Page 1: a quiet private block.
    sa.fold(accessRec(1, kBase + 4096, 8, true));
    const auto advice = sa.advise();
    ASSERT_GE(advice.size(), 2u);
    EXPECT_EQ(advice[0].pattern, SharePattern::Migratory);
    EXPECT_GT(advice[0].estSavedMsgs, 0u);
    EXPECT_GE(advice[0].estSavedMsgs, advice[1].estSavedMsgs);
}

// --- determinism & zero impact ----------------------------------------

MachineConfig
analyzeConfig()
{
    MachineConfig cfg;
    cfg.core.nodes = 8;
    cfg.obs.analyze = true;
    return cfg;
}

std::string
runAndReport(double* checksum = nullptr, Tick* cycles = nullptr)
{
    TargetMachine t = buildTyphoonStache(analyzeConfig());
    Em3dApp app(em3dParams(DataSet::Tiny, 0.2, 8));
    const RunResult r = t.run(app);
    if (checksum)
        *checksum = app.checksum();
    if (cycles)
        *cycles = r.execTime;
    std::ostringstream report;
    t.obs->sharing()->writeReport(report);
    std::ostringstream json;
    t.obs->sharing()->writeJson(json);
    return report.str() + "\n---\n" + json.str();
}

TEST(SharingEndToEnd, ReportByteIdenticalAcrossRuns)
{
    const std::string a = runAndReport();
    const std::string b = runAndReport();
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("dominant sharing pattern: producer-consumer"),
              std::string::npos);
    EXPECT_NE(a.find("=== protocol advisor ==="), std::string::npos);
}

TEST(SharingEndToEnd, AnalyzerDoesNotChangeSimulation)
{
    double withCk = 0, withoutCk = 0;
    Tick withCy = 0;
    runAndReport(&withCk, &withCy);

    MachineConfig cfg;
    cfg.core.nodes = 8;
    TargetMachine t = buildTyphoonStache(cfg);
    EXPECT_EQ(t.obs, nullptr); // analyzer off => no recorder at all
    Em3dApp app(em3dParams(DataSet::Tiny, 0.2, 8));
    const RunResult r = t.run(app);
    EXPECT_EQ(r.execTime, withCy);
    EXPECT_EQ(app.checksum(), withCk);
    withoutCk = app.checksum();
    EXPECT_EQ(withCk, withoutCk);
}

// --- LatencyProfiler::openMisses --------------------------------------

TraceRecord
missRec(NodeId node, RecKind kind, Tick tick, bool write)
{
    TraceRecord r;
    r.kind = kind;
    r.tick = tick;
    r.node = node;
    r.sub = write ? 1 : 0;
    return r;
}

TEST(ObsProfiler, OpenMissesCountsUnclosedMisses)
{
    StatSet stats;
    LatencyProfiler prof(stats, 4);
    EXPECT_EQ(prof.openMisses(), 0u);
    prof.fold(missRec(0, RecKind::MissStart, 10, false));
    prof.fold(missRec(2, RecKind::MissStart, 12, true));
    EXPECT_EQ(prof.openMisses(), 2u);
    prof.fold(missRec(0, RecKind::MissEnd, 40, false));
    EXPECT_EQ(prof.openMisses(), 1u);
    // The app "ends" here: node 2's miss never closes and must still
    // be visible (the obs.miss.open gauge the sampler exports).
    EXPECT_EQ(prof.openMisses(), 1u);
}

TEST(ObsProfiler, ReFaultOnSameSuspendedAccessKeepsOneMiss)
{
    StatSet stats;
    LatencyProfiler prof(stats, 2);
    prof.fold(missRec(1, RecKind::BlockFault, 5, true));
    prof.fold(missRec(1, RecKind::MissStart, 6, true));
    EXPECT_EQ(prof.openMisses(), 1u);
    prof.fold(missRec(1, RecKind::MissEnd, 30, true));
    EXPECT_EQ(prof.openMisses(), 0u);
}

} // namespace
} // namespace tt
