/** @file Unit tests for the self-telemetry layer (DESIGN.md §16). */

#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>

#include "obs/telemetry.hh"
#include "sim/event_queue.hh"
#include "sim/host_timer.hh"
#include "sim/parallel_engine.hh"
#include "sim/stats.hh"

namespace tt
{
namespace
{

TEST(HostTimer, OnlyEverySampledEventIsTimed)
{
    HostTimer t;
    for (std::uint64_t i = 0; i < 3 * HostTimer::kTimeSample; ++i) {
        t.eventStart();
        EXPECT_EQ(t.timing(), (i + 1) % HostTimer::kTimeSample == 0);
        t.eventEnd();
        EXPECT_FALSE(t.timing());
    }
    EXPECT_EQ(t.events(), 3 * HostTimer::kTimeSample);
    EXPECT_EQ(t.timedEvents(), 3u);
}

TEST(HostTimer, ScopesChargeAndRestoreCategories)
{
    HostTimer t;
    // Drive to the sampled event so the scopes are live.
    for (std::uint64_t i = 0; i + 1 < HostTimer::kTimeSample; ++i) {
        t.eventStart();
        t.eventEnd();
    }
    t.eventStart();
    ASSERT_TRUE(t.timing());
    {
        TelemScope handler(&t, HostTimer::Cat::Handler);
        {
            // Nested scope: checker time must not stay charged to
            // the handler, and the handler category is restored.
            TelemScope checker(&t, HostTimer::Cat::Checker);
        }
        TelemScope net(&t, HostTimer::Cat::Net);
    }
    t.eventEnd();
    // Every category the scopes passed through took >= 0 tsc, the
    // total event elapsed covers all of them, and nothing was
    // charged to never-entered categories.
    const std::uint64_t sum = t.catTsc(HostTimer::Cat::Dispatch) +
                              t.catTsc(HostTimer::Cat::Handler) +
                              t.catTsc(HostTimer::Cat::Net) +
                              t.catTsc(HostTimer::Cat::Checker) +
                              t.catTsc(HostTimer::Cat::Transport);
    EXPECT_GE(t.eventTsc(), sum > 0 ? sum - sum : 0u); // sum >= 0
    EXPECT_LE(sum, t.eventTsc() + 1000); // same clock, tiny skew slack
    EXPECT_EQ(t.catTsc(HostTimer::Cat::Transport), 0u);
}

TEST(HostTimer, ScopesAreFreeWhenNotTiming)
{
    HostTimer t;
    t.eventStart(); // event 1 of kTimeSample: not sampled
    ASSERT_FALSE(t.timing());
    {
        TelemScope s(&t, HostTimer::Cat::Handler);
        TelemScope null_timer(nullptr, HostTimer::Cat::Net);
    }
    t.eventEnd();
    EXPECT_EQ(t.catTsc(HostTimer::Cat::Handler), 0u);
    EXPECT_EQ(t.timedEvents(), 0u);
}

TEST(Telemetry, ProbesTrackCurrentAndPeak)
{
    StatSet stats;
    Telemetry telem(stats, 8);
    std::size_t a = 100, b = 50;
    telem.addMemProbe("alpha", [&] { return a; });
    telem.addMemProbe("beta", [&] { return b; });
    telem.registerStats();

    telem.runBegin(); // first sample: total 150
    a = 400;          // peak for alpha...
    telem.sampleMemory(); // total 450 — the total peak
    a = 30;
    b = 80; // peak for beta happens while alpha is small
    telem.sampleMemory();
    telem.runEnd(); // final sample: total 110

    EXPECT_EQ(telem.totalPeakBytes(), 450u);
    EXPECT_DOUBLE_EQ(telem.peakBytesPerNode(), 450.0 / 8);
    ASSERT_EQ(telem.probeResults().size(), 2u);
    EXPECT_EQ(telem.probeResults()[0].name, "alpha");
    EXPECT_EQ(telem.probeResults()[0].peakBytes, 400u);
    EXPECT_EQ(telem.probeResults()[0].finalBytes, 30u);
    EXPECT_EQ(telem.probeResults()[1].name, "beta");
    EXPECT_EQ(telem.probeResults()[1].peakBytes, 80u);
    EXPECT_EQ(telem.probeResults()[1].finalBytes, 80u);
    // Per-probe peaks can sum past the total peak (they need not be
    // simultaneous), but no single probe can exceed it.
    EXPECT_LE(telem.probeResults()[0].peakBytes,
              telem.totalPeakBytes());
    EXPECT_LE(telem.probeResults()[1].peakBytes,
              telem.totalPeakBytes());
    EXPECT_EQ(telem.memSamples(), 4u);
}

TEST(Telemetry, FinalizeFoldsStats)
{
    StatSet stats;
    Telemetry telem(stats, 4);
    telem.addMemProbe("probe", [] { return std::size_t{1024}; });
    telem.registerStats();
    telem.runBegin();
    telem.runEnd();
    telem.finalize();
    EXPECT_EQ(stats.get("obs.telemetry.mem.probe.peak_bytes"), 1024u);
    EXPECT_EQ(stats.get("obs.telemetry.mem.total_peak_bytes"), 1024u);
    EXPECT_EQ(stats.get("obs.telemetry.mem.peak_bytes_per_node"),
              256u);
    EXPECT_EQ(stats.get("obs.telemetry.mem.samples"), 2u);
    EXPECT_EQ(stats.get("obs.host.sample_every"),
              HostTimer::kTimeSample);
    // Attribution can never overshoot the measured wall time: the
    // extrapolation is clamped (catScale), so the folded percentage
    // stays within [0, 100].
    EXPECT_LE(stats.get("obs.host.attributed_pct"), 100u);
}

TEST(Telemetry, ReportJsonShape)
{
    StatSet stats;
    Telemetry telem(stats, 8);
    telem.addMemProbe("event_queue", [] { return std::size_t{64}; });
    telem.registerStats();
    telem.runBegin();
    // A few events through the timer so host fields are non-trivial.
    for (int i = 0; i < 64; ++i) {
        telem.timer().eventStart();
        telem.timer().eventEnd();
    }
    telem.runEnd();

    std::ostringstream oss;
    telem.writeReport(oss);
    const std::string out = oss.str();
    for (const char* key :
         {"\"nodes\": 8", "\"mem\"", "\"samples\"",
          "\"total_peak_bytes\"", "\"peak_bytes_per_node\"",
          "\"subsystems\"", "\"event_queue\"", "\"final_bytes\"",
          "\"peak_bytes\"", "\"host\"", "\"wall_ms\"",
          "\"sample_every\"", "\"events\": 64", "\"timed_events\": 8",
          "\"attributed_pct\"", "\"categories_ms\"", "\"dispatch\"",
          "\"handler\"", "\"net\"", "\"checker\"", "\"transport\"",
          "\"engine\""}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
    // No engine attached: the lane-utilization section is absent.
    EXPECT_EQ(out.find("\"lane_executed\""), std::string::npos);
    EXPECT_EQ(out.find("nan"), std::string::npos);
    EXPECT_GE(telem.attributedPct(), 0.0);
    EXPECT_LE(telem.attributedPct(), 100.0);
}

TEST(Telemetry, EngineSnapExportsLaneUtilization)
{
    // Drive real lane events through the parallel engine and check
    // the snap pulled at runEnd: lane counts are nonzero, the
    // per-lane breakdown sums to the total, and the report grows an
    // engine section with the per-lane arrays.
    StatSet stats;
    EventQueue eq;
    ParallelEngine eng(eq, /*lanes=*/4, /*lookahead=*/8,
                       /*threads=*/2);
    eng.enableTelemetry();
    std::function<void(int, Tick)> chain = [&](int lane, Tick t) {
        if (t >= 64)
            return;
        eng.scheduleLane(lane, t + 2,
                         [&chain, lane, t] { chain(lane, t + 2); });
    };
    for (int lane = 0; lane < 4; ++lane)
        eng.scheduleLane(lane, 1, [&chain, lane] { chain(lane, 1); });

    Telemetry telem(stats, 4);
    telem.setEngine(&eng);
    telem.registerStats();
    telem.runBegin();
    eng.run();
    telem.runEnd();

    std::uint64_t sum = 0;
    for (int lane = 0; lane < 4; ++lane)
        sum += eng.laneExecutedAt(lane);
    EXPECT_GT(sum, 0u);
    EXPECT_EQ(sum, eng.laneExecuted());
    EXPECT_GT(eng.windows(), 0u);

    std::ostringstream oss;
    telem.writeReport(oss);
    const std::string out = oss.str();
    for (const char* key :
         {"\"engine\"", "\"threads\": 2", "\"lanes\": 4",
          "\"lane_executed\"", "\"mailbox_hwm\"",
          "\"worker_stall_ms\""}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
    telem.finalize();
    EXPECT_EQ(stats.get("obs.telemetry.engine.lane_events"), sum);
}

TEST(Telemetry, AttributionClampedToWall)
{
    StatSet stats;
    Telemetry telem(stats, 1);
    telem.registerStats();
    telem.runBegin();
    // Time every sampled event with real TSC reads; the x8
    // extrapolation could overshoot the short wall interval, and the
    // clamp must hold regardless.
    for (int i = 0; i < 1024; ++i) {
        telem.timer().eventStart();
        {
            TelemScope s(&telem.timer(), HostTimer::Cat::Handler);
        }
        telem.timer().eventEnd();
    }
    telem.runEnd();
    double sum = telem.engineNs();
    for (auto c : {HostTimer::Cat::Dispatch, HostTimer::Cat::Handler,
                   HostTimer::Cat::Net, HostTimer::Cat::Checker,
                   HostTimer::Cat::Transport})
        sum += telem.catNs(c);
    EXPECT_LE(telem.attributedPct(), 100.0 + 1e-9);
    EXPECT_LE(sum, telem.wallMs() * 1e6 * (1 + 1e-9));
}

} // namespace
} // namespace tt
