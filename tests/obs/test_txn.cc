/**
 * @file
 * Coherence-transaction tracer tests (DESIGN.md §14): end-to-end
 * transaction spans on all four target systems, the critical-path
 * partition identity (segments sum to measured wall latency),
 * retransmitted and duplicate-suppressed messages staying tied to
 * their originating transaction under --faults, the fault-off
 * negative control, the sharing-pattern join, and byte-determinism
 * of every tracer output.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "apps/workloads.hh"
#include "config/builders.hh"
#include "obs/sharing.hh"
#include "obs/txn.hh"

namespace tt
{
namespace
{

std::string
slurp(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    std::ostringstream oss;
    oss << f.rdbuf();
    return oss.str();
}

struct TempFile
{
    std::string path;
    explicit TempFile(const std::string& p) : path(p) {}
    ~TempFile() { std::remove(path.c_str()); }
};

MachineConfig
txnConfig()
{
    MachineConfig cfg;
    cfg.core.nodes = 8;
    cfg.obs.txn = true;
    // Huge rings so the span-level assertions below see every record.
    cfg.obs.ringCapacity = 1u << 20;
    return cfg;
}

TargetMachine
buildSystem(const std::string& system, const MachineConfig& cfg)
{
    if (system == "dirnnb")
        return buildDirNNB(cfg);
    if (system == "stache")
        return buildTyphoonStache(cfg);
    if (system == "migratory")
        return buildTyphoonMigratory(cfg);
    return buildTyphoonEm3dUpdate(cfg);
}

RunResult
runEm3d(TargetMachine& t, const std::string& system)
{
    if (system == "update") {
        Em3dApp app(em3dParams(DataSet::Tiny, 0.2, 8),
                    Em3dApp::Mode::Update, t.em3d);
        return t.run(app);
    }
    Em3dApp app(em3dParams(DataSet::Tiny, 0.2, 8));
    return t.run(app);
}

// --- end-to-end spans + the partition identity ------------------------

TEST(ObsTxn, SpansCoverAllSystemsAndPartitionSumsToWall)
{
    for (const char* system :
         {"dirnnb", "stache", "migratory", "update"}) {
        TargetMachine t = buildSystem(system, txnConfig());
        runEm3d(t, system);
        t.obs->finalize();

        ASSERT_NE(t.obs->txn(), nullptr) << system;
        const TxnTracer& tx = *t.obs->txn();
        const TxnTracer::Summary s = tx.summarize();
        ASSERT_GT(s.completed, 0u) << system;
        EXPECT_EQ(s.opened, s.completed)
            << system << ": a clean run leaves no transaction open";

        std::uint64_t wall = 0, spanned = 0;
        for (const TxnTracer::Result& r : tx.results()) {
            // The acceptance criterion: per-transaction latency
            // attribution sums exactly to the measured wall latency.
            Tick sum = 0;
            for (Tick c : r.cat)
                sum += c;
            ASSERT_EQ(sum, r.wall()) << system << " txn " << r.id;
            EXPECT_GT(r.wall(), 0u) << system << " txn " << r.id;
            wall += r.wall();
            spanned += r.sends;
        }
        EXPECT_EQ(wall, s.wallTicks) << system;
        // Remote misses derive protocol messages; the spans made it
        // from origin through the network back into the transaction.
        EXPECT_GT(spanned, 0u) << system;
        const std::uint64_t attributed =
            s.catTicks[0] + s.catTicks[1] + s.catTicks[2];
        EXPECT_GT(attributed, 0u)
            << system << ": request/network/directory all empty";
    }
}

TEST(ObsTxn, StatsCountersMatchSummary)
{
    TargetMachine t = buildSystem("stache", txnConfig());
    runEm3d(t, "stache");
    t.obs->finalize();
    const TxnTracer::Summary s = t.obs->txn()->summarize();
    StatSet& st = t.machine->stats();
    EXPECT_EQ(st.get("obs.txn.opened"), s.opened);
    EXPECT_EQ(st.get("obs.txn.completed"), s.completed);
    EXPECT_EQ(st.get("obs.txn.wall_ticks"), s.wallTicks);
    std::uint64_t catSum = 0;
    for (int c = 0; c < kTxnCats; ++c) {
        const std::string name = std::string("obs.txn.") +
                                 txnCatName(static_cast<TxnCat>(c)) +
                                 "_ticks";
        EXPECT_EQ(st.get(name),
                  s.catTicks[static_cast<std::size_t>(c)])
            << name;
        catSum += s.catTicks[static_cast<std::size_t>(c)];
    }
    EXPECT_EQ(catSum, s.wallTicks);
}

// --- the sharing-pattern join -----------------------------------------

TEST(ObsTxn, Em3dWallTimeIsDominatedByProducerConsumer)
{
    TargetMachine t = buildSystem("stache", txnConfig());
    runEm3d(t, "stache");
    t.obs->finalize();
    const TxnTracer& tx = *t.obs->txn();
    EXPECT_EQ(tx.dominantPattern(),
              static_cast<int>(SharePattern::ProducerConsumer));
    const auto& agg = tx.byPattern()[static_cast<std::size_t>(
        SharePattern::ProducerConsumer)];
    EXPECT_GT(agg.txns, 0u);
    EXPECT_GT(agg.wallTicks, 0u);
}

// --- --trace-critical x --faults --------------------------------------

MachineConfig
faultyConfig()
{
    MachineConfig cfg = txnConfig();
    cfg.faults =
        parseFaultSpec("drop=0.02,dup=0.02,reorder=0.05,seed=7");
    return cfg;
}

TEST(ObsTxn, RetransmitsAndSuppressionsLinkToTheirTransaction)
{
    TargetMachine t = buildSystem("stache", faultyConfig());
    runEm3d(t, "stache");
    t.obs->finalize();

    // Every transaction id ever opened, from the record stream itself.
    std::set<std::uint32_t> opened;
    for (NodeId n = 0; n < t.obs->nodes(); ++n) {
        for (const TraceRecord& r : t.obs->ringOf(n)) {
            if (r.kind == RecKind::BlockFault ||
                r.kind == RecKind::MissStart)
                opened.insert(r.txn);
        }
    }
    ASSERT_FALSE(opened.empty());

    std::size_t retxSpans = 0, supSpans = 0;
    for (NodeId n = 0; n < t.obs->nodes(); ++n) {
        for (const TraceRecord& r : t.obs->ringOf(n)) {
            if (r.kind == RecKind::MsgSend &&
                (r.flags & kRecRetransmit)) {
                ++retxSpans;
                // The acceptance criterion: for a seeded --faults run
                // every retransmit span links to its transaction.
                ASSERT_NE(r.txn, 0u);
                EXPECT_TRUE(opened.count(r.txn));
            }
            if (r.kind == RecKind::MsgSup) {
                ++supSpans;
                ASSERT_NE(r.txn, 0u);
                EXPECT_TRUE(opened.count(r.txn));
            }
        }
    }
    ASSERT_GT(retxSpans, 0u) << "fault mix produced no retransmits";
    ASSERT_GT(supSpans, 0u) << "fault mix produced no dups";

    // The tracer saw the same episodes the raw stream shows.
    const TxnTracer::Summary s = t.obs->txn()->summarize();
    EXPECT_GT(s.retxTxns, 0u);
    EXPECT_EQ(s.supArrivals, supSpans);
    EXPECT_GT(s.catTicks[static_cast<std::size_t>(TxnCat::Retransmit)],
              0u);
}

TEST(ObsTxn, FaultFreeRunCarriesNoFaultArtifacts)
{
    // Negative control: with faults off, the record stream contains
    // no retransmit/drop flags and no suppressed arrivals, so the
    // trace is identical to one taken before loss repair existed.
    TargetMachine t = buildSystem("stache", txnConfig());
    runEm3d(t, "stache");
    t.obs->finalize();
    for (NodeId n = 0; n < t.obs->nodes(); ++n) {
        for (const TraceRecord& r : t.obs->ringOf(n)) {
            ASSERT_EQ(r.flags, 0u);
            ASSERT_NE(r.kind, RecKind::MsgSup);
        }
    }
    const TxnTracer::Summary s = t.obs->txn()->summarize();
    EXPECT_EQ(s.retxTxns, 0u);
    EXPECT_EQ(s.supArrivals, 0u);
    EXPECT_EQ(s.catTicks[static_cast<std::size_t>(TxnCat::Retransmit)],
              0u);
}

// --- determinism ------------------------------------------------------

TEST(ObsTxn, ReportAndJsonAreByteDeterministic)
{
    std::string report0, json0;
    for (int run = 0; run < 2; ++run) {
        TargetMachine t = buildSystem("stache", faultyConfig());
        runEm3d(t, "stache");
        t.obs->finalize();
        std::ostringstream rep, js;
        t.obs->txn()->writeReport(rep);
        t.obs->txn()->writeJson(js);
        if (run == 0) {
            report0 = rep.str();
            json0 = js.str();
            EXPECT_NE(report0.find("critical path"), std::string::npos);
        } else {
            EXPECT_EQ(report0, rep.str());
            EXPECT_EQ(json0, js.str());
        }
    }
}

TEST(ObsTxn, TracingDoesNotChangeSimulatedResults)
{
    MachineConfig bareCfg;
    bareCfg.core.nodes = 8;
    TargetMachine bare = buildSystem("stache", bareCfg);
    const RunResult r0 = runEm3d(bare, "stache");

    TargetMachine traced = buildSystem("stache", txnConfig());
    const RunResult r1 = runEm3d(traced, "stache");
    EXPECT_EQ(r0.execTime, r1.execTime);
    EXPECT_EQ(r0.events, r1.events);
}

TEST(ObsTxn, TxnOffTraceFileHasNoTransactionArtifacts)
{
    // A --trace run without --trace-critical must stay byte-identical
    // to the pre-transaction-tracing exporter: no txn args, no flow
    // events, no suppressed-arrival instants.
    TempFile tf("obs_txn_off.trace.json");
    MachineConfig cfg;
    cfg.core.nodes = 8;
    cfg.obs.enable = true;
    cfg.obs.traceFile = tf.path;
    TargetMachine t = buildSystem("stache", cfg);
    runEm3d(t, "stache");
    t.obs->finalize();
    const std::string bytes = slurp(tf.path);
    ASSERT_FALSE(bytes.empty());
    EXPECT_EQ(bytes.find("\"txn\""), std::string::npos);
    EXPECT_EQ(bytes.find("msg.suppressed"), std::string::npos);
    EXPECT_EQ(bytes.find("\"ph\": \"s\""), std::string::npos);
}

TEST(ObsTxn, TxnOnTraceFileIsByteDeterministicWithFlows)
{
    std::string first;
    for (int run = 0; run < 2; ++run) {
        TempFile tf("obs_txn_on.trace.json");
        MachineConfig cfg = txnConfig();
        cfg.obs.enable = true;
        cfg.obs.traceFile = tf.path;
        TargetMachine t = buildSystem("stache", cfg);
        runEm3d(t, "stache");
        t.obs->finalize();
        const std::string bytes = slurp(tf.path);
        ASSERT_FALSE(bytes.empty());
        // Flow events tie the spans together in the Perfetto UI.
        EXPECT_NE(bytes.find("\"ph\": \"s\""), std::string::npos);
        EXPECT_NE(bytes.find("\"ph\": \"f\""), std::string::npos);
        EXPECT_NE(bytes.find("\"txn\""), std::string::npos);
        if (run == 0)
            first = bytes;
        else
            EXPECT_EQ(first, bytes);
    }
}

} // namespace
} // namespace tt
