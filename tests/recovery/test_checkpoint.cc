/**
 * @file
 * Checkpoint/restart acceptance tests (DESIGN.md §15): a run that
 * writes a checkpoint at a barrier epoch and a fresh run restored
 * from that file must be byte-identical from the snapshot tick on —
 * same exec time, same application checksum, same stats JSON. Also
 * pins down the snapshot file format round trip and the config
 * fingerprint.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>

#include "apps/workloads.hh"
#include "config/builders.hh"
#include "recovery/checkpoint.hh"
#include "recovery/snapshot.hh"

namespace tt
{
namespace
{

constexpr const char* kSystems[] = {"dirnnb", "stache", "migratory",
                                    "update"};
constexpr std::uint64_t kFp = 0x7357F00D;

TargetMachine
buildSystem(const std::string& system, const MachineConfig& cfg)
{
    if (system == "dirnnb")
        return buildDirNNB(cfg);
    if (system == "stache")
        return buildTyphoonStache(cfg);
    if (system == "migratory")
        return buildTyphoonMigratory(cfg);
    return buildTyphoonEm3dUpdate(cfg);
}

std::unique_ptr<Em3dApp>
mkApp(const std::string& system, TargetMachine& t)
{
    const Em3dApp::Params p = em3dParams(DataSet::Tiny, 0.2, 1);
    if (system == "update")
        return std::make_unique<Em3dApp>(p, Em3dApp::Mode::Update,
                                         t.em3d);
    return std::make_unique<Em3dApp>(p);
}

MemorySystem*
memsysOf(TargetMachine& t)
{
    return t.typhoon ? static_cast<MemorySystem*>(t.typhoon.get())
                     : static_cast<MemorySystem*>(t.dir.get());
}

struct RunRec
{
    Tick cycles = 0;
    double checksum = 0;
    std::string statsJson;
};

RunRec
record(TargetMachine& t, const Em3dApp& app, const RunResult& r)
{
    RunRec rec;
    rec.cycles = r.execTime;
    rec.checksum = app.checksum();
    std::ostringstream os;
    t.m().stats().writeJson(os);
    rec.statsJson = os.str();
    return rec;
}

/** Run @p system to completion, checkpointing at @p epoch. */
RunRec
runCheckpointing(const std::string& system, const std::string& file,
                 bool check, std::uint64_t epoch = 2)
{
    MachineConfig cfg;
    cfg.core.nodes = 8;
    cfg.check.enable = check;
    cfg.recovery.checkpointEpoch = epoch;
    cfg.recovery.checkpointFile = file;
    cfg.recovery.fingerprint = kFp;
    TargetMachine t = buildSystem(system, cfg);
    auto app = mkApp(system, t);
    const RunResult r = t.run(*app);
    EXPECT_NE(t.checkpoint, nullptr) << system;
    EXPECT_TRUE(t.checkpoint->written()) << system;
    return record(t, *app, r);
}

/** Run @p system restored from checkpoint @p file. */
RunRec
runRestored(const std::string& system, const std::string& file,
            bool check)
{
    MachineConfig cfg;
    cfg.core.nodes = 8;
    cfg.check.enable = check;
    TargetMachine t = buildSystem(system, cfg);
    auto app = mkApp(system, t);
    const Snapshot snap = loadSnapshot(file);
    EXPECT_EQ(snap.fingerprint, kFp) << system;
    const Machine::RestartPlan plan = restorePlan(
        snap, t.m(), *t.network, *memsysOf(t), t.checker.get());
    const RunResult r = t.run(*app, plan);
    return record(t, *app, r);
}

TEST(Checkpoint, RoundTripIsByteIdenticalOnAllSystems)
{
    for (const char* system : kSystems) {
        const std::string file = ::testing::TempDir() + "ckpt_" +
                                 system + ".bin";
        const RunRec a = runCheckpointing(system, file, false);
        const RunRec b = runRestored(system, file, false);
        EXPECT_EQ(a.cycles, b.cycles) << system;
        EXPECT_EQ(a.checksum, b.checksum) << system;
        EXPECT_EQ(a.statsJson, b.statsJson) << system;
        std::remove(file.c_str());
    }
}

TEST(Checkpoint, RoundTripComposesWithChecker)
{
    // --check=fast on both sides: the checker's shadow state is
    // canonicalized and rebuilt through the poke path; a restored run
    // must stay violation-free and byte-identical.
    const std::string file =
        ::testing::TempDir() + "ckpt_checked.bin";
    const RunRec a = runCheckpointing("stache", file, true);
    const RunRec b = runRestored("stache", file, true);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.statsJson, b.statsJson);
    std::remove(file.c_str());
}

TEST(Checkpoint, RestoreTwiceIsDeterministic)
{
    const std::string file =
        ::testing::TempDir() + "ckpt_twice.bin";
    runCheckpointing("dirnnb", file, false);
    const RunRec a = runRestored("dirnnb", file, false);
    const RunRec b = runRestored("dirnnb", file, false);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.statsJson, b.statsJson);
    std::remove(file.c_str());
}

TEST(Checkpoint, SnapshotFileRoundTripPreservesEveryField)
{
    Snapshot s;
    s.fingerprint = 0xDEAD'BEEF'1234'5678ULL;
    s.episodes = 7;
    s.tick = 123456;
    s.order = {2, 0, 3, 1};
    Snapshot::MemRange r;
    r.va = 0x10000;
    for (int i = 0; i < 300; ++i)
        r.bytes.push_back(static_cast<std::uint8_t>(i * 7));
    s.mem.push_back(r);
    s.counters = {{"alpha", 1}, {"beta", 99999999999ULL}};

    const std::string file =
        ::testing::TempDir() + "ckpt_fields.bin";
    saveSnapshot(s, file);
    const Snapshot t = loadSnapshot(file);
    EXPECT_EQ(t.fingerprint, s.fingerprint);
    EXPECT_EQ(t.episodes, s.episodes);
    EXPECT_EQ(t.tick, s.tick);
    EXPECT_EQ(t.order, s.order);
    ASSERT_EQ(t.mem.size(), 1u);
    EXPECT_EQ(t.mem[0].va, s.mem[0].va);
    EXPECT_EQ(t.mem[0].bytes, s.mem[0].bytes);
    EXPECT_EQ(t.counters, s.counters);
    std::remove(file.c_str());
}

TEST(Checkpoint, ConfigFingerprintIsStableAndDiscriminating)
{
    EXPECT_EQ(configFingerprint("stache|8|128"),
              configFingerprint("stache|8|128"));
    EXPECT_NE(configFingerprint("stache|8|128"),
              configFingerprint("stache|4|128"));
    EXPECT_NE(configFingerprint(""), configFingerprint("x"));
}

} // namespace
} // namespace tt
