/**
 * @file
 * Crash-stop recovery acceptance tests (DESIGN.md §15): a crash
 * mid-run on each of the four memory systems is detected, the
 * machine rolls back to the last in-memory snapshot, and the run
 * completes with the crash-free checksum and a clean checker. A
 * second crash during recovery is unrecoverable; a crash scheduled
 * past the application's end is ignored.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "apps/workloads.hh"
#include "config/builders.hh"
#include "recovery/coordinator.hh"
#include "tests/helpers.hh"

namespace tt
{
namespace
{

constexpr const char* kSystems[] = {"dirnnb", "stache", "migratory",
                                    "update"};

TargetMachine
buildSystem(const std::string& system, const MachineConfig& cfg)
{
    if (system == "dirnnb")
        return buildDirNNB(cfg);
    if (system == "stache")
        return buildTyphoonStache(cfg);
    if (system == "migratory")
        return buildTyphoonMigratory(cfg);
    return buildTyphoonEm3dUpdate(cfg);
}

std::unique_ptr<Em3dApp>
mkApp(const std::string& system, TargetMachine& t)
{
    const Em3dApp::Params p = em3dParams(DataSet::Tiny, 0.2, 1);
    if (system == "update")
        return std::make_unique<Em3dApp>(p, Em3dApp::Mode::Update,
                                         t.em3d);
    return std::make_unique<Em3dApp>(p);
}

struct Baseline
{
    Tick cycles = 0;
    double checksum = 0;
};

/** Crash-free reference run (checker on, no faults). */
Baseline
baselineOf(const std::string& system)
{
    MachineConfig cfg;
    cfg.core.nodes = 8;
    cfg.check.enable = true;
    TargetMachine t = buildSystem(system, cfg);
    auto app = mkApp(system, t);
    const RunResult r = t.run(*app);
    return {r.execTime, app->checksum()};
}

MachineConfig
crashConfig(Tick tick, NodeId victim)
{
    MachineConfig cfg;
    cfg.core.nodes = 8;
    cfg.check.enable = true;
    cfg.faults.crashes.emplace_back(tick, victim);
    cfg.faults.seed = 1;
    return cfg;
}

TEST(Recovery, CrashMidRunRecoversOnAllSystems)
{
    for (const char* system : kSystems) {
        const Baseline base = baselineOf(system);
        ASSERT_GT(base.cycles, 0u) << system;

        TargetMachine t =
            buildSystem(system, crashConfig(base.cycles / 2, 2));
        ASSERT_NE(t.recovery, nullptr) << system;
        auto app = mkApp(system, t);
        const RunResult r = t.run(*app);

        EXPECT_EQ(t.recovery->crashesInjected(), 1u) << system;
        EXPECT_EQ(t.recovery->recoveriesDone(), 1u) << system;
        // Rolled-back recomputation reproduces the exact result.
        EXPECT_EQ(app->checksum(), base.checksum) << system;
        // The crash + rollback cost simulated time.
        EXPECT_GT(r.execTime, base.cycles) << system;
        // SWMR and friends held through the recovery.
        ASSERT_NE(t.checker, nullptr) << system;
        EXPECT_TRUE(t.checker->violations().empty()) << system;
        // Rollback had at least the post-setup snapshot to land on.
        EXPECT_GE(t.m().stats().get("rec.snapshots"), 1u) << system;
    }
}

TEST(Recovery, SecondCrashDuringOutageIsUnrecoverable)
{
    const Baseline base = baselineOf("stache");
    const Tick mid = base.cycles / 2;
    // Victim two goes down while victim one is still unrecovered
    // (crash detection waits out the deterministic 2000-tick probe).
    MachineConfig cfg = crashConfig(mid, 2);
    cfg.faults.crashes.emplace_back(mid + 1000, 3);

    TargetMachine t = buildSystem("stache", cfg);
    auto app = mkApp("stache", t);
    // The throw unwinds out of run() abandoning suspended coroutine
    // frames by design.
    test::ExpectLeaksInScope leaks;
    EXPECT_THROW(t.run(*app), UnrecoverableCrash);
    EXPECT_EQ(t.recovery->crashesInjected(), 1u);
    EXPECT_EQ(t.recovery->recoveriesDone(), 0u);
}

TEST(Recovery, CrashAfterAppFinishIsIgnored)
{
    const Baseline base = baselineOf("dirnnb");
    // The crash tick lands far past the application's end; the event
    // still fires in the final queue drain and must be a no-op.
    TargetMachine t =
        buildSystem("dirnnb", crashConfig(base.cycles * 4, 2));
    auto app = mkApp("dirnnb", t);
    // (No exec-time comparison: the crash-configured build carries
    // the reliable transport, whose charged acks shift timing even
    // when the crash itself is a no-op.)
    t.run(*app);
    EXPECT_EQ(app->checksum(), base.checksum);
    EXPECT_EQ(t.recovery->crashesInjected(), 0u);
    EXPECT_EQ(t.recovery->recoveriesDone(), 0u);
}

TEST(Recovery, CrashRecoveryComposesWithMessageFaults)
{
    // Crash-stop plus a lossy fabric: the reliable transport repairs
    // the losses, the coordinator repairs the crash, and the result
    // still matches the fault-free run.
    const Baseline base = baselineOf("stache");
    MachineConfig cfg = crashConfig(base.cycles / 2, 5);
    cfg.faults.drop = 0.002;
    cfg.faults.dup = 0.002;

    TargetMachine t = buildSystem("stache", cfg);
    auto app = mkApp("stache", t);
    t.run(*app);
    EXPECT_EQ(t.recovery->crashesInjected(), 1u);
    EXPECT_EQ(t.recovery->recoveriesDone(), 1u);
    EXPECT_EQ(app->checksum(), base.checksum);
    EXPECT_TRUE(t.checker->violations().empty());
}

TEST(Recovery, CrashFreeBuildCarriesNoRecoveryMachinery)
{
    MachineConfig cfg;
    cfg.core.nodes = 8;
    TargetMachine t = buildTyphoonStache(cfg);
    EXPECT_EQ(t.recovery, nullptr);
    EXPECT_EQ(t.checkpoint, nullptr);
    EXPECT_FALSE(t.m().stats().hasCounter("rec.snapshots"));
    EXPECT_FALSE(t.m().stats().hasCounter("rec.crashes"));
}

} // namespace
} // namespace tt
