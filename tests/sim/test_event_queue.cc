/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace tt
{
namespace
{

TEST(EventQueue, StartsAtTickZeroEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            eq.scheduleIn(7, chain);
    };
    eq.schedule(0, chain);
    Tick end = eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(end, 28u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(50, [&] { EXPECT_ANY_THROW(eq.schedule(10, [] {})); });
    eq.run();
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int count = 0;
    for (Tick t = 0; t < 100; t += 10)
        eq.schedule(t, [&] { ++count; });
    eq.runUntil(45);
    EXPECT_EQ(count, 5); // events at 0,10,20,30,40
    EXPECT_EQ(eq.pending(), 5u);
    eq.run();
    EXPECT_EQ(count, 10);
}

TEST(EventQueue, StopHaltsRun)
{
    EventQueue eq;
    int count = 0;
    for (Tick t = 1; t <= 10; ++t)
        eq.schedule(t, [&] {
            ++count;
            if (count == 3)
                eq.stop();
        });
    eq.run();
    EXPECT_EQ(count, 3);
    EXPECT_EQ(eq.pending(), 7u);
}

TEST(EventQueue, ExecutedCountsEvents)
{
    EventQueue eq;
    for (int i = 0; i < 4; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 4u);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(5, [] {});
    eq.schedule(6, [] {});
    eq.step();
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueue, ScheduleAtCurrentTimeIsLegal)
{
    EventQueue eq;
    bool ran = false;
    eq.schedule(10, [&] { eq.schedule(10, [&] { ran = true; }); });
    eq.run();
    EXPECT_TRUE(ran);
}

} // namespace
} // namespace tt
