/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "sim/event_queue.hh"

namespace tt
{
namespace
{

TEST(EventQueue, StartsAtTickZeroEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            eq.scheduleIn(7, chain);
    };
    eq.schedule(0, chain);
    Tick end = eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(end, 28u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(50, [&] { EXPECT_ANY_THROW(eq.schedule(10, [] {})); });
    eq.run();
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int count = 0;
    for (Tick t = 0; t < 100; t += 10)
        eq.schedule(t, [&] { ++count; });
    eq.runUntil(45);
    EXPECT_EQ(count, 5); // events at 0,10,20,30,40
    EXPECT_EQ(eq.pending(), 5u);
    eq.run();
    EXPECT_EQ(count, 10);
}

TEST(EventQueue, StopHaltsRun)
{
    EventQueue eq;
    int count = 0;
    for (Tick t = 1; t <= 10; ++t)
        eq.schedule(t, [&] {
            ++count;
            if (count == 3)
                eq.stop();
        });
    eq.run();
    EXPECT_EQ(count, 3);
    EXPECT_EQ(eq.pending(), 7u);
}

TEST(EventQueue, ExecutedCountsEvents)
{
    EventQueue eq;
    for (int i = 0; i < 4; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 4u);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(5, [] {});
    eq.schedule(6, [] {});
    eq.step();
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueue, ScheduleAtCurrentTimeIsLegal)
{
    EventQueue eq;
    bool ran = false;
    eq.schedule(10, [&] { eq.schedule(10, [&] { ran = true; }); });
    eq.run();
    EXPECT_TRUE(ran);
}

// The calendar window spans 4096 ticks; events past its edge take the
// far-heap path. The tests below pin the ordering contract across
// that structural boundary.

TEST(EventQueue, FarFutureTiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(100000, [&order, i] { order.push_back(i); });
    eq.run();
    ASSERT_EQ(order.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CrossWindowInsertionOrderHolds)
{
    // Interleave insertions below and beyond the window edge; the
    // execution order must still be (tick, insertion-seq).
    EventQueue eq;
    std::vector<Tick> fired;
    const Tick ticks[] = {10, 5000, 4095, 4096, 1,      9000,
                          10, 4097, 5000, 0,    100000, 4095};
    for (Tick t : ticks)
        eq.schedule(t, [&fired, t] { fired.push_back(t); });
    eq.run();
    ASSERT_EQ(fired.size(), std::size(ticks));
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_GE(fired[i], fired[i - 1]);
    // The two tick-10 events and the two tick-5000 events keep their
    // relative insertion order (checked implicitly by the full-order
    // comparison against a stable sort).
    std::vector<Tick> expect(std::begin(ticks), std::end(ticks));
    std::stable_sort(expect.begin(), expect.end());
    EXPECT_EQ(fired, expect);
}

TEST(EventQueue, CallbackSchedulesAcrossWindowEdge)
{
    // From inside a callback, schedule events this side of the window
    // edge, exactly on it, and far beyond; all must run, in order.
    EventQueue eq;
    std::vector<Tick> fired;
    eq.schedule(7, [&] {
        for (Tick d : {Tick{4088}, Tick{4089}, Tick{4090}, Tick{20000}})
            eq.scheduleIn(d, [&fired, &eq] {
                fired.push_back(eq.now());
            });
    });
    eq.run();
    EXPECT_EQ(fired, (std::vector<Tick>{7 + 4088, 7 + 4089, 7 + 4090,
                                        7 + 20000}));
}

TEST(EventQueue, RunUntilAtWindowBoundary)
{
    // Stop exactly on the last tick of the first window, then resume
    // into a rebased one.
    EventQueue eq;
    int count = 0;
    for (Tick t : {Tick{4095}, Tick{4096}, Tick{4097}, Tick{12000}})
        eq.schedule(t, [&] { ++count; });
    eq.runUntil(4095);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(eq.pending(), 3u);
    eq.runUntil(4096);
    EXPECT_EQ(count, 2);
    eq.run();
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.now(), 12000u);
}

TEST(EventQueue, CalendarMatchesReferenceHeap)
{
    // The same randomized self-scheduling workload must execute the
    // identical event sequence through both queue structures.
    auto runWorkload = [](EventQueue::Mode mode) {
        EventQueue eq(mode);
        std::vector<std::pair<Tick, int>> fired;
        std::uint64_t state = 12345;
        auto rnd = [&state] {
            state = state * 6364136223846793005ULL + 1442695040888963407ULL;
            return state >> 33;
        };
        std::function<void(int)> spawn = [&](int id) {
            fired.emplace_back(eq.now(), id);
            if (id >= 400)
                return;
            // A mix of near, boundary, and far delays.
            eq.scheduleIn(rnd() % 64, [&spawn, id] { spawn(id * 2); });
            eq.scheduleIn(4000 + rnd() % 8192,
                          [&spawn, id] { spawn(id * 2 + 1); });
        };
        eq.schedule(0, [&spawn] { spawn(1); });
        eq.run();
        return fired;
    };
    const auto cal = runWorkload(EventQueue::Mode::Calendar);
    const auto ref = runWorkload(EventQueue::Mode::ReferenceHeap);
    EXPECT_EQ(cal, ref);
}

} // namespace
} // namespace tt
