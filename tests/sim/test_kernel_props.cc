/**
 * @file
 * Property tests of the simulation kernel: randomized scheduling
 * orders must execute in timestamp order; the event queue under
 * self-rescheduling load; deterministic replay of mixed workloads.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"

namespace tt
{
namespace
{

TEST(EventQueueProps, RandomInsertionExecutesInTimestampOrder)
{
    Rng rng(2024);
    for (int trial = 0; trial < 20; ++trial) {
        EventQueue eq;
        std::vector<std::pair<Tick, int>> fired;
        const int n = 200;
        std::vector<Tick> times;
        for (int i = 0; i < n; ++i) {
            const Tick t = rng.below(500);
            times.push_back(t);
            eq.schedule(t, [&fired, t, i] {
                fired.emplace_back(t, i);
            });
        }
        eq.run();
        ASSERT_EQ(fired.size(), static_cast<std::size_t>(n));
        // Non-decreasing timestamps…
        for (std::size_t i = 1; i < fired.size(); ++i)
            ASSERT_GE(fired[i].first, fired[i - 1].first);
        // …and within a timestamp, insertion order.
        for (std::size_t i = 1; i < fired.size(); ++i) {
            if (fired[i].first == fired[i - 1].first) {
                ASSERT_GT(fired[i].second, fired[i - 1].second);
            }
        }
    }
}

TEST(EventQueueProps, SelfReschedulingCascade)
{
    // Each event spawns up to two more with bounded delays; total
    // executed count must match the spawn arithmetic exactly.
    EventQueue eq;
    Rng rng(7);
    std::uint64_t spawned = 1, executed = 0;
    std::function<void(int)> node = [&](int depth) {
        ++executed;
        if (depth == 0)
            return;
        const int kids = 1 + (rng.next() & 1);
        for (int k = 0; k < kids; ++k) {
            ++spawned;
            eq.scheduleIn(1 + rng.below(10),
                          [&node, depth] { node(depth - 1); });
        }
    };
    eq.schedule(0, [&node] { node(12); });
    eq.run();
    EXPECT_EQ(executed, spawned);
    EXPECT_EQ(eq.executed(), spawned);
}

TEST(EventQueueProps, InterleavedRunUntilSegmentsEqualFullRun)
{
    auto makeLoad = [](EventQueue& eq, std::vector<Tick>& log) {
        Rng rng(99);
        for (int i = 0; i < 300; ++i) {
            const Tick t = rng.below(1000);
            eq.schedule(t, [&log, &eq] { log.push_back(eq.now()); });
        }
    };
    std::vector<Tick> a, b;
    {
        EventQueue eq;
        makeLoad(eq, a);
        eq.run();
    }
    {
        EventQueue eq;
        makeLoad(eq, b);
        for (Tick limit = 100; limit <= 1000; limit += 100)
            eq.runUntil(limit);
        eq.run();
    }
    EXPECT_EQ(a, b);
}

TEST(RngProps, StreamsWithDistinctSeedsAreIndependent)
{
    // Weak independence check: correlation of two streams near zero.
    Rng a(1), b(2);
    double dot = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        dot += (a.uniform() - 0.5) * (b.uniform() - 0.5);
    EXPECT_NEAR(dot / n, 0.0, 0.005);
}

TEST(RngProps, BelowIsUnbiasedAcrossBuckets)
{
    Rng r(3);
    const int buckets = 10;
    std::vector<int> count(buckets, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++count[r.below(buckets)];
    for (int b = 0; b < buckets; ++b)
        EXPECT_NEAR(count[b], n / buckets, n / buckets * 0.06) << b;
}

} // namespace
} // namespace tt
