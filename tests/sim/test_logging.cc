/** @file Unit tests for panic/fatal/assert behaviour. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/logging.hh"

namespace tt
{
namespace
{

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(tt_panic("boom ", 42), std::logic_error);
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(tt_fatal("bad config: ", "x"), std::runtime_error);
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(tt_assert(1 + 1 == 2, "math"));
}

TEST(Logging, AssertThrowsOnFalse)
{
    EXPECT_THROW(tt_assert(false, "must fail: ", 7), std::logic_error);
}

TEST(Logging, MessageConcatenation)
{
    EXPECT_EQ(log_detail::concat("a", 1, "b", 2.5), "a1b2.5");
}

} // namespace
} // namespace tt
