/**
 * @file
 * ParallelEngine unit tests (DESIGN.md §12): the pure-global fast path
 * matches a plain EventQueue run, lane workloads are deterministic
 * across thread counts, the cross-lane lookahead contract is enforced,
 * mixed global+lane windows serialize correctly, and event accounting
 * adds up.
 */

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/parallel_engine.hh"

namespace tt
{
namespace
{

/** One observed lane-event execution. */
struct Obs
{
    int lane;
    Tick when;
    int tag;

    bool
    operator==(const Obs& o) const
    {
        return lane == o.lane && when == o.when && tag == o.tag;
    }
};

/**
 * A deterministic multi-lane workload: each lane runs a chain of
 * events that log themselves and occasionally fire a cross-lane event
 * exactly `lookahead` ticks ahead (always legal under the window
 * contract). Per-lane logs are lane-owned, so no synchronization is
 * needed; the concatenated logs are the run's observable behavior.
 */
std::vector<Obs>
runLaneWorkload(int lanes, int threads, Tick lookahead, Tick horizon)
{
    EventQueue eq;
    ParallelEngine eng(eq, lanes, lookahead, threads);
    std::vector<std::vector<Obs>> logs(lanes);

    struct Ctx
    {
        ParallelEngine& eng;
        std::vector<std::vector<Obs>>& logs;
        int lanes;
        Tick lookahead;
        Tick horizon;
    } ctx{eng, logs, lanes, lookahead, horizon};

    // A cross-lane "hop" event: logs itself and relays to the next
    // lane while hops remain. Bounded — each relay decrements hops.
    std::function<void(int, Tick, int)> hop = [&ctx, &hop](int lane,
                                                           Tick t,
                                                           int hops) {
        ctx.logs[lane].push_back({lane, t, 1000 + hops});
        if (hops <= 0)
            return;
        const int dst = (lane + 1) % ctx.lanes;
        const Tick at = t + ctx.lookahead;
        ctx.eng.scheduleLane(dst, at, [&hop, dst, at, hops] {
            hop(dst, at, hops - 1);
        });
    };

    // Each lane's self chain: one event per stride until the horizon;
    // every third step launches a 3-hop cross-lane relay exactly one
    // window ahead — the tightest legal cross-lane distance.
    std::function<void(int, Tick, int)> self =
        [&ctx, &self, &hop](int lane, Tick t, int step) {
            ctx.logs[lane].push_back({lane, t, step});
            if (step % 3 == 0) {
                const int dst = (lane + 1) % ctx.lanes;
                const Tick at = t + ctx.lookahead;
                ctx.eng.scheduleLane(dst, at, [&hop, dst, at] {
                    hop(dst, at, 3);
                });
            }
            const Tick next = t + 1 + (lane % 3);
            if (next >= ctx.horizon)
                return;
            ctx.eng.scheduleLane(lane, next, [&self, lane, next, step] {
                self(lane, next, step + 1);
            });
        };

    for (int lane = 0; lane < lanes; ++lane) {
        const Tick t0 = lane % 5;
        eng.scheduleLane(lane, t0,
                         [&self, lane, t0] { self(lane, t0, 0); });
    }
    eng.run();

    std::vector<Obs> all;
    for (const auto& l : logs)
        all.insert(all.end(), l.begin(), l.end());
    return all;
}

TEST(ParallelEngine, GlobalOnlyFastPathMatchesPlainQueue)
{
    // A workload scheduled entirely on the global queue must execute
    // in exactly the order the plain EventQueue would use, with no
    // windows at all.
    std::vector<int> plainOrder;
    {
        EventQueue eq;
        std::vector<int> order;
        for (int i = 0; i < 64; ++i) {
            eq.schedule((i * 7) % 13, [i, &order, &eq] {
                order.push_back(i);
                if (i % 4 == 0)
                    eq.schedule(eq.now() + 5,
                                [i, &order] { order.push_back(100 + i); });
            });
        }
        eq.run();
        plainOrder = order;
    }

    EventQueue eq;
    ParallelEngine eng(eq, 4, 10, 2);
    std::vector<int> engineOrder;
    for (int i = 0; i < 64; ++i) {
        eq.schedule((i * 7) % 13, [i, &engineOrder, &eq] {
            engineOrder.push_back(i);
            if (i % 4 == 0)
                eq.schedule(eq.now() + 5, [i, &engineOrder] {
                    engineOrder.push_back(100 + i);
                });
        });
    }
    eng.run();

    EXPECT_EQ(engineOrder, plainOrder);
    EXPECT_EQ(eng.windows(), 0u); // never left the fast path
    EXPECT_EQ(eng.laneExecuted(), 0u);
    EXPECT_EQ(eng.executed(), eq.executed());
}

TEST(ParallelEngine, LaneWorkloadDeterministicAcrossThreadCounts)
{
    const auto t1 = runLaneWorkload(8, 1, 7, 400);
    const auto t2 = runLaneWorkload(8, 2, 7, 400);
    const auto t4 = runLaneWorkload(8, 4, 7, 400);
    ASSERT_FALSE(t1.empty());
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(t1, t4);
}

TEST(ParallelEngine, MoreThreadsThanLanesIsClamped)
{
    EventQueue eq;
    ParallelEngine eng(eq, 3, 5, 16);
    EXPECT_EQ(eng.threads(), 3);
    const auto a = runLaneWorkload(3, 16, 5, 200);
    const auto b = runLaneWorkload(3, 1, 5, 200);
    EXPECT_EQ(a, b);
}

TEST(ParallelEngine, CrossLaneInsideWindowThrows)
{
    EventQueue eq;
    ParallelEngine eng(eq, 2, 10, 2);
    // A lane event scheduling another lane at its own tick violates
    // the lookahead contract; the engine must fail loudly, not
    // silently corrupt causality.
    eng.scheduleLane(0, 5, [&eng] {
        eng.scheduleLane(1, 5, [] {});
    });
    EXPECT_THROW(eng.run(), std::logic_error);
}

TEST(ParallelEngine, SameLanePastSchedulingThrows)
{
    EventQueue eq;
    ParallelEngine eng(eq, 2, 10, 1);
    eng.scheduleLane(0, 8, [&eng] {
        eng.scheduleLane(0, 3, [] {}); // own past
    });
    EXPECT_THROW(eng.run(), std::logic_error);
}

TEST(ParallelEngine, GlobalEventWakesLanesFromFastPath)
{
    // Lane work appearing *during* the pure-global fast path must
    // interrupt it and fall back to windowed execution.
    EventQueue eq;
    ParallelEngine eng(eq, 4, 10, 2);
    std::vector<Obs> log;
    eq.schedule(3, [&eng, &log] {
        eng.scheduleLane(2, 50, [&log] { log.push_back({2, 50, 1}); });
    });
    eq.schedule(4, [] {});
    const Tick last = eng.run();
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log[0], (Obs{2, 50, 1}));
    EXPECT_EQ(last, 50u);
    EXPECT_GE(eng.windows(), 1u);
    EXPECT_EQ(eng.laneExecuted(), 1u);
    EXPECT_EQ(eng.executed(), eq.executed() + 1);
}

TEST(ParallelEngine, MixedGlobalAndLaneWindowsRunSerially)
{
    // Global events interleaved in time with lane events: every window
    // containing global work must be executed serially, and at equal
    // ticks the global queue goes first.
    EventQueue eq;
    ParallelEngine eng(eq, 2, 4, 2);
    std::vector<std::pair<char, Tick>> order; // coordinator-only

    for (Tick t = 2; t <= 20; t += 4)
        eq.schedule(t, [&order, t] { order.push_back({'g', t}); });
    for (Tick t = 2; t <= 20; t += 2)
        eng.scheduleLane(0, t, [&order, t] {
            order.push_back({'l', t});
        });

    eng.run();

    ASSERT_FALSE(order.empty());
    EXPECT_GT(eng.serialWindows(), 0u);
    // Non-decreasing ticks; global before lane at the same tick.
    for (std::size_t i = 1; i < order.size(); ++i) {
        EXPECT_LE(order[i - 1].second, order[i].second);
        if (order[i - 1].second == order[i].second) {
            EXPECT_FALSE(order[i - 1].first == 'l' &&
                         order[i].first == 'g')
                << "lane event ran before a same-tick global event";
        }
    }
}

TEST(ParallelEngine, ExecutedCountsAddUp)
{
    EventQueue eq;
    ParallelEngine eng(eq, 4, 6, 2);
    for (int i = 0; i < 10; ++i)
        eq.schedule(i * 3, [] {});
    for (int lane = 0; lane < 4; ++lane)
        for (int i = 0; i < 5; ++i)
            eng.scheduleLane(lane, 1 + i * 7, [] {});
    eng.run();
    EXPECT_EQ(eq.executed(), 10u);
    EXPECT_EQ(eng.laneExecuted(), 20u);
    EXPECT_EQ(eng.executed(), 30u);
    EXPECT_TRUE(eng.empty());
}

TEST(ParallelEngine, FinalizersRunAfterEveryRun)
{
    EventQueue eq;
    ParallelEngine eng(eq, 2, 5, 1);
    int calls = 0;
    eng.addFinalizer([&calls] { ++calls; });
    eng.scheduleLane(0, 1, [] {});
    eng.run();
    EXPECT_EQ(calls, 1);
    // Also on a run that ends in an exception.
    eng.scheduleLane(0, 10, [&eng] {
        eng.scheduleLane(1, 10, [] {}); // lookahead violation
    });
    EXPECT_THROW(eng.run(), std::logic_error);
    EXPECT_EQ(calls, 2);
}

} // namespace
} // namespace tt
