/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "sim/random.hh"

namespace tt
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(42);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng r(7);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[r.below(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool lo = false, hi = false;
    for (int i = 0; i < 5000; ++i) {
        auto v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        lo |= v == -3;
        hi |= v == 3;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng r(13);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (r.chance(0.25))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

} // namespace
} // namespace tt
