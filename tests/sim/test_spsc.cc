/**
 * @file
 * SpscChannel unit tests: FIFO order across chunk boundaries, move-only
 * payloads, destruction of unconsumed elements, and a two-thread
 * producer/consumer stress run (the engine's actual usage pattern).
 */

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "sim/spsc.hh"

namespace tt
{
namespace
{

TEST(Spsc, FifoAcrossChunkBoundaries)
{
    // Well past several 128-slot chunks.
    SpscChannel<int> ch;
    constexpr int kN = 1000;
    for (int i = 0; i < kN; ++i)
        ch.push(i);
    int v = -1;
    for (int i = 0; i < kN; ++i) {
        ASSERT_TRUE(ch.tryPop(&v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(ch.tryPop(&v));
}

TEST(Spsc, InterleavedPushPop)
{
    SpscChannel<int> ch;
    int v = -1;
    int next = 0;
    for (int round = 0; round < 300; ++round) {
        // Uneven batches so the read and write cursors cross chunk
        // edges at different offsets.
        for (int i = 0; i < 3; ++i)
            ch.push(round * 3 + i);
        if (round % 2 == 0) {
            ASSERT_TRUE(ch.tryPop(&v));
            EXPECT_EQ(v, next++);
        }
    }
    while (ch.tryPop(&v))
        EXPECT_EQ(v, next++);
    EXPECT_EQ(next, 900);
}

TEST(Spsc, MoveOnlyPayload)
{
    SpscChannel<std::unique_ptr<int>> ch;
    for (int i = 0; i < 200; ++i)
        ch.push(std::make_unique<int>(i));
    std::unique_ptr<int> p;
    for (int i = 0; i < 200; ++i) {
        ASSERT_TRUE(ch.tryPop(&p));
        ASSERT_TRUE(p);
        EXPECT_EQ(*p, i);
    }
    EXPECT_FALSE(ch.tryPop(&p));
}

TEST(Spsc, DestructorReleasesUnconsumedElements)
{
    auto token = std::make_shared<int>(42);
    {
        SpscChannel<std::shared_ptr<int>> ch;
        for (int i = 0; i < 300; ++i) // several chunks, half drained
            ch.push(token);
        std::shared_ptr<int> p;
        for (int i = 0; i < 150; ++i)
            ASSERT_TRUE(ch.tryPop(&p));
    }
    // Every copy the channel still held must have been destroyed.
    EXPECT_EQ(token.use_count(), 1);
}

TEST(Spsc, TwoThreadStress)
{
    SpscChannel<std::uint64_t> ch;
    constexpr std::uint64_t kN = 200'000;
    std::thread producer([&ch] {
        for (std::uint64_t i = 0; i < kN; ++i)
            ch.push(i);
    });
    std::uint64_t expect = 0;
    std::uint64_t v = 0;
    while (expect < kN) {
        if (ch.tryPop(&v)) {
            ASSERT_EQ(v, expect);
            ++expect;
        }
    }
    producer.join();
    EXPECT_FALSE(ch.tryPop(&v));
}

} // namespace
} // namespace tt
