/** @file Unit tests for the statistics registry. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace tt
{
namespace
{

TEST(Stats, CounterBasics)
{
    StatSet s;
    s.counter("a.b").inc();
    s.counter("a.b").inc(4);
    EXPECT_EQ(s.get("a.b"), 5u);
    EXPECT_EQ(s.get("missing"), 0u);
    EXPECT_TRUE(s.hasCounter("a.b"));
    EXPECT_FALSE(s.hasCounter("missing"));
}

TEST(Stats, SameNameSameCounter)
{
    StatSet s;
    Counter& c1 = s.counter("x");
    Counter& c2 = s.counter("x");
    EXPECT_EQ(&c1, &c2);
}

TEST(Stats, AverageTracksMeanMinMax)
{
    StatSet s;
    auto& a = s.average("lat");
    a.sample(10);
    a.sample(20);
    a.sample(30);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_DOUBLE_EQ(a.min(), 10.0);
    EXPECT_DOUBLE_EQ(a.max(), 30.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Stats, HistogramBucketsAndOverflow)
{
    StatSet s;
    auto& h = s.histogram("h", 10.0, 4); // [0,10) [10,20) [20,30) [30,40)
    h.sample(5);
    h.sample(15);
    h.sample(35);
    h.sample(99);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[2], 0u);
    EXPECT_EQ(h.buckets()[3], 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.summary().count(), 4u);
}

TEST(Stats, DumpContainsAllNames)
{
    StatSet s;
    s.counter("alpha").inc(3);
    s.average("beta").sample(1.5);
    s.histogram("gamma").sample(2);
    std::ostringstream oss;
    s.dump(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("beta"), std::string::npos);
    EXPECT_NE(out.find("gamma"), std::string::npos);
}

TEST(Stats, ResetZeroesEverything)
{
    StatSet s;
    s.counter("c").inc(7);
    s.average("a").sample(3);
    s.histogram("h").sample(1);
    s.reset();
    EXPECT_EQ(s.get("c"), 0u);
    EXPECT_EQ(s.average("a").count(), 0u);
    EXPECT_EQ(s.histogram("h").summary().count(), 0u);
}

} // namespace
} // namespace tt
