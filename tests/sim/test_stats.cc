/** @file Unit tests for the statistics registry. */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "sim/stats.hh"

namespace tt
{
namespace
{

TEST(Stats, CounterBasics)
{
    StatSet s;
    s.counter("a.b").inc();
    s.counter("a.b").inc(4);
    EXPECT_EQ(s.get("a.b"), 5u);
    EXPECT_EQ(s.get("missing"), 0u);
    EXPECT_TRUE(s.hasCounter("a.b"));
    EXPECT_FALSE(s.hasCounter("missing"));
}

TEST(Stats, SameNameSameCounter)
{
    StatSet s;
    Counter& c1 = s.counter("x");
    Counter& c2 = s.counter("x");
    EXPECT_EQ(&c1, &c2);
}

TEST(Stats, AverageTracksMeanMinMax)
{
    StatSet s;
    auto& a = s.average("lat");
    a.sample(10);
    a.sample(20);
    a.sample(30);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_DOUBLE_EQ(a.min(), 10.0);
    EXPECT_DOUBLE_EQ(a.max(), 30.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Stats, HistogramBucketsAndOverflow)
{
    StatSet s;
    auto& h = s.histogram("h", 10.0, 4); // [0,10) [10,20) [20,30) [30,40)
    h.sample(5);
    h.sample(15);
    h.sample(35);
    h.sample(99);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[2], 0u);
    EXPECT_EQ(h.buckets()[3], 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.summary().count(), 4u);
}

TEST(Stats, DumpContainsAllNames)
{
    StatSet s;
    s.counter("alpha").inc(3);
    s.average("beta").sample(1.5);
    s.histogram("gamma").sample(2);
    std::ostringstream oss;
    s.dump(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("beta"), std::string::npos);
    EXPECT_NE(out.find("gamma"), std::string::npos);
}

TEST(Stats, ResetZeroesEverything)
{
    StatSet s;
    s.counter("c").inc(7);
    s.average("a").sample(3);
    s.histogram("h").sample(1);
    s.reset();
    EXPECT_EQ(s.get("c"), 0u);
    EXPECT_EQ(s.average("a").count(), 0u);
    EXPECT_EQ(s.histogram("h").summary().count(), 0u);
}

TEST(Stats, AverageVarianceAndStddev)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
    a.sample(4);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0); // one sample: undefined -> 0
    a.sample(8);
    a.sample(12);
    // {4, 8, 12}: mean 8, unbiased variance (16 + 0 + 16) / 2 = 16.
    EXPECT_DOUBLE_EQ(a.variance(), 16.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 4.0);
    a.reset();
    a.sample(5);
    a.sample(5);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Stats, HistogramBoundaryValuesAreDeterministic)
{
    // Bucket i covers [i*width, (i+1)*width): an exact boundary value
    // belongs to the *upper* bucket, for any width.
    Histogram h(10.0, 4);
    h.sample(0);
    h.sample(10);
    h.sample(20);
    h.sample(30);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[2], 1u);
    EXPECT_EQ(h.buckets()[3], 1u);
    EXPECT_EQ(h.overflow(), 0u);

    // The classic FP trap: v/width can land just below the true
    // quotient (e.g. 0.3/0.1 = 2.9999...). Boundaries are i*width
    // *computed in double*: 3*0.1 is the bucket-3 edge and belongs to
    // bucket 3, while double(0.3) sits just below that edge and so
    // deterministically lands in bucket 2 — never split between the
    // two by rounding luck.
    Histogram f(0.1, 8);
    f.sample(0.3);
    f.sample(3 * 0.1);
    EXPECT_EQ(f.buckets()[2], 1u);
    EXPECT_EQ(f.buckets()[3], 1u);
}

TEST(Stats, HistogramEdgeSamples)
{
    Histogram h(10.0, 4);
    h.sample(39.999); // last representable bucket
    h.sample(40);     // first value past the end -> overflow
    h.sample(-1);     // negative -> underflow, never bucket 0
    EXPECT_EQ(h.buckets()[3], 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.buckets()[0], 0u);
    EXPECT_DOUBLE_EQ(h.width(), 10.0);
    EXPECT_EQ(h.bucketCount(), 4u);
    h.reset();
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Stats, WriteJsonIsWellFormedAndComplete)
{
    StatSet s;
    s.counter("net.messages").inc(42);
    s.average("lat").sample(1.5);
    s.average("lat").sample(2.5);
    auto& h = s.histogram("h", 2.0, 4);
    h.sample(1);
    h.sample(3);
    h.sample(-1);
    h.sample(99);

    std::ostringstream oss;
    s.writeJson(oss);
    const std::string out = oss.str();

    // Spot-check structure and content; full JSON validity is held by
    // the tools/check.sh smoke grid (python3 -m json.tool).
    EXPECT_NE(out.find("\"counters\""), std::string::npos);
    EXPECT_NE(out.find("\"net.messages\": 42"), std::string::npos);
    EXPECT_NE(out.find("\"averages\""), std::string::npos);
    EXPECT_NE(out.find("\"variance\""), std::string::npos);
    EXPECT_NE(out.find("\"stddev\""), std::string::npos);
    EXPECT_NE(out.find("\"histograms\""), std::string::npos);
    EXPECT_NE(out.find("\"underflow\": 1"), std::string::npos);
    EXPECT_NE(out.find("\"overflow\": 1"), std::string::npos);

    // Stable key order: maps are name-sorted, so two dumps of
    // equal content are byte-identical.
    std::ostringstream oss2;
    s.writeJson(oss2);
    EXPECT_EQ(out, oss2.str());
}

TEST(Stats, EmptyAverageAndHistogramJson)
{
    // Zero-sample aggregates must still serialize as well-formed
    // JSON with numeric zeros — no nan, no inf, no garbage.
    StatSet s;
    s.average("empty.avg");
    s.histogram("empty.hist", 2.0, 4);
    std::ostringstream oss;
    s.writeJson(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("\"empty.avg\": {\"mean\": 0, \"count\": 0"),
              std::string::npos);
    EXPECT_NE(out.find("\"buckets\": [0, 0, 0, 0]"),
              std::string::npos);
    EXPECT_EQ(out.find("nan"), std::string::npos);
    EXPECT_EQ(out.find("inf"), std::string::npos);
}

TEST(Stats, SingleSampleAverageJson)
{
    // One sample: variance is undefined; the unbiased estimator
    // reports 0, never NaN from a 0/0.
    StatSet s;
    s.average("one").sample(7.5);
    EXPECT_DOUBLE_EQ(s.average("one").variance(), 0.0);
    std::ostringstream oss;
    s.writeJson(oss);
    EXPECT_NE(oss.str().find("\"variance\": 0, \"stddev\": 0"),
              std::string::npos);
}

TEST(Stats, NonFiniteAverageSamplesEmitNull)
{
    // A NaN sample poisons the running sum; the JSON exporter must
    // write null for the non-finite derived values (JSON has no NaN
    // literal) so the document stays parseable.
    StatSet s;
    s.average("poisoned").sample(
        std::numeric_limits<double>::quiet_NaN());
    std::ostringstream oss;
    s.writeJson(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("\"mean\": null"), std::string::npos);
    EXPECT_EQ(out.find("nan"), std::string::npos);
}

TEST(Stats, HistogramNonFiniteSamplesRouteToUnderflow)
{
    // NaN/Inf have no bucket (casting them to an index is UB).
    // They count as underflow and stay out of the summary, so
    // mean/min/max remain meaningful.
    Histogram h(10.0, 4);
    h.sample(std::numeric_limits<double>::quiet_NaN());
    h.sample(std::numeric_limits<double>::infinity());
    h.sample(-std::numeric_limits<double>::infinity());
    h.sample(15);
    EXPECT_EQ(h.underflow(), 3u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.summary().count(), 1u);
    EXPECT_DOUBLE_EQ(h.summary().mean(), 15.0);
    EXPECT_DOUBLE_EQ(h.summary().min(), 15.0);
    EXPECT_DOUBLE_EQ(h.summary().max(), 15.0);
}

} // namespace
} // namespace tt
