/** @file Unit tests for the coroutine task runtime. */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/task.hh"

namespace tt
{
namespace
{

Task<int>
answer()
{
    co_return 42;
}

Task<int>
addOne(Task<int> (*inner)())
{
    int v = co_await inner();
    co_return v + 1;
}

Task<void>
recordInto(std::vector<int>& v)
{
    v.push_back(1);
    co_return;
}

TEST(Task, CompletesAndReturnsValue)
{
    int result = 0;
    spawnDetached(
        [](int& out) -> Task<void> {
            out = co_await answer();
        }(result),
        [](std::exception_ptr ep) { EXPECT_FALSE(ep); });
    EXPECT_EQ(result, 42);
}

TEST(Task, NestedAwaitChains)
{
    int result = 0;
    spawnDetached(
        [](int& out) -> Task<void> {
            out = co_await addOne(&answer);
        }(result),
        [](std::exception_ptr) {});
    EXPECT_EQ(result, 43);
}

TEST(Task, LazyUntilAwaited)
{
    std::vector<int> v;
    {
        Task<void> t = recordInto(v);
        EXPECT_TRUE(v.empty()); // not started
    } // destroyed un-awaited: must not leak or run
    EXPECT_TRUE(v.empty());
}

TEST(Task, ExceptionPropagatesToRoot)
{
    std::exception_ptr captured;
    spawnDetached(
        []() -> Task<void> {
            co_await []() -> Task<int> {
                throw std::runtime_error("inner");
                co_return 0;
            }();
        }(),
        [&](std::exception_ptr ep) { captured = ep; });
    ASSERT_TRUE(captured);
    EXPECT_THROW(std::rethrow_exception(captured), std::runtime_error);
}

Task<std::uint64_t>
sumRecursive(std::uint64_t n)
{
    if (n == 0)
        co_return 0;
    co_return n + co_await sumRecursive(n - 1);
}

TEST(Task, DeepRecursionViaSymmetricTransfer)
{
#if !defined(__OPTIMIZE__)
    // Bounded stack depth relies on the compiler tail-calling the
    // symmetric transfer; at -O0 (the sanitizer preset) every resume
    // keeps its caller frame and 50k frames overflow the stack.
    GTEST_SKIP() << "requires an optimized build for tail-call "
                    "symmetric transfer";
#endif
    // 50k frames would blow the native stack without symmetric
    // transfer; with it this runs in bounded stack space.
    std::uint64_t result = 0;
    spawnDetached(
        [](std::uint64_t& out) -> Task<void> {
            out = co_await sumRecursive(50000);
        }(result),
        [](std::exception_ptr ep) { EXPECT_FALSE(ep); });
    EXPECT_EQ(result, 50000ull * 50001 / 2);
}

TEST(Task, MoveTransfersOwnership)
{
    Task<int> a = answer();
    Task<int> b = std::move(a);
    EXPECT_FALSE(a.valid());
    EXPECT_TRUE(b.valid());
}

struct ManualResume
{
    std::coroutine_handle<> h;
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> handle) { h = handle; }
    void await_resume() const {}
};

TEST(Task, SuspensionAndExternalResume)
{
    ManualResume gate;
    bool done = false;
    spawnDetached(
        [](ManualResume& g) -> Task<void> {
            co_await g;
        }(gate),
        [&](std::exception_ptr) { done = true; });
    EXPECT_FALSE(done);
    ASSERT_TRUE(gate.h);
    gate.h.resume();
    EXPECT_TRUE(done);
}

} // namespace
} // namespace tt
