/**
 * @file
 * Unit tests of the 64-bit Stache directory entry: pointer mode,
 * bit-vector overflow, auxiliary-structure overflow, and the exact
 * bit packing the paper describes (section 3).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "stache/dir_entry.hh"

namespace tt
{
namespace
{

using St = StacheDirEntry::State;

TEST(StacheDirEntry, StartsIdleAllZero)
{
    StacheDirEntry e;
    EXPECT_EQ(e.state(), St::Idle);
    EXPECT_EQ(e.raw(), 0u);
}

TEST(StacheDirEntry, ExclusivePacksOwnerInStateHalfword)
{
    StacheDirEntry e;
    StacheAuxTable aux;
    e.setExcl(17, aux);
    EXPECT_EQ(e.state(), St::Excl);
    EXPECT_EQ(e.owner(), 17);
    // state bits 63..62 == 2; owner in bits 59..48.
    EXPECT_EQ(e.raw() >> 62, 2u);
    EXPECT_EQ((e.raw() >> 48) & 0xFFF, 17u);
}

TEST(StacheDirEntry, PointerModeUpToSixSharers)
{
    StacheDirEntry e;
    StacheAuxTable aux;
    const NodeId nodes[] = {3, 9, 21, 30, 1, 14};
    for (NodeId n : nodes)
        e.addSharer(n, 6, 32, aux);
    EXPECT_EQ(e.state(), St::Shared);
    EXPECT_FALSE(e.bitvecMode());
    EXPECT_FALSE(e.auxMode());
    EXPECT_EQ(e.sharerCount(aux), 6);
    // One-byte pointers, in insertion order.
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ((e.raw() >> (8 * i)) & 0xFF,
                  static_cast<std::uint64_t>(nodes[i]));
    for (NodeId n : nodes)
        EXPECT_TRUE(e.contains(n, aux));
    EXPECT_FALSE(e.contains(2, aux));
}

TEST(StacheDirEntry, AddIsIdempotent)
{
    StacheDirEntry e;
    StacheAuxTable aux;
    e.addSharer(5, 6, 32, aux);
    e.addSharer(5, 6, 32, aux);
    EXPECT_EQ(e.sharerCount(aux), 1);
}

TEST(StacheDirEntry, SeventhSharerOverflowsToBitVector)
{
    StacheDirEntry e;
    StacheAuxTable aux;
    for (NodeId n = 0; n < 7; ++n)
        e.addSharer(n * 4, 6, 32, aux);
    EXPECT_TRUE(e.bitvecMode());
    EXPECT_FALSE(e.auxMode());
    EXPECT_EQ(e.sharerCount(aux), 7);
    // Bit vector in the low 32 bits.
    std::uint32_t bv = static_cast<std::uint32_t>(e.raw());
    for (NodeId n = 0; n < 7; ++n)
        EXPECT_TRUE((bv >> (n * 4)) & 1);
    auto mem = e.members(aux);
    EXPECT_EQ(mem.size(), 7u);
    EXPECT_TRUE(std::is_sorted(mem.begin(), mem.end()));
}

TEST(StacheDirEntry, LargeMachineOverflowsToAuxStructure)
{
    StacheDirEntry e;
    StacheAuxTable aux;
    // 128-node machine: the bit vector cannot hold node ids >= 32.
    for (NodeId n = 0; n < 7; ++n)
        e.addSharer(n * 18, 6, 128, aux);
    EXPECT_TRUE(e.auxMode());
    EXPECT_EQ(e.sharerCount(aux), 7);
    EXPECT_TRUE(e.contains(108, aux));
    EXPECT_EQ(aux.sets.size(), 1u);
    // Keeps growing fine.
    for (NodeId n = 0; n < 128; ++n)
        e.addSharer(n, 6, 128, aux);
    EXPECT_EQ(e.sharerCount(aux), 128);
}

TEST(StacheDirEntry, RemoveSharerPointerMode)
{
    StacheDirEntry e;
    StacheAuxTable aux;
    e.addSharer(4, 6, 32, aux);
    e.addSharer(8, 6, 32, aux);
    e.addSharer(15, 6, 32, aux);
    e.removeSharer(8, aux);
    EXPECT_EQ(e.sharerCount(aux), 2);
    EXPECT_FALSE(e.contains(8, aux));
    EXPECT_TRUE(e.contains(4, aux));
    EXPECT_TRUE(e.contains(15, aux));
    e.removeSharer(4, aux);
    e.removeSharer(15, aux);
    EXPECT_EQ(e.state(), St::Idle);
    EXPECT_EQ(e.raw(), 0u);
}

TEST(StacheDirEntry, RemoveSharerBitvecMode)
{
    StacheDirEntry e;
    StacheAuxTable aux;
    for (NodeId n = 0; n < 10; ++n)
        e.addSharer(n, 6, 32, aux);
    for (NodeId n = 0; n < 10; ++n)
        e.removeSharer(n, aux);
    EXPECT_EQ(e.state(), St::Idle);
}

TEST(StacheDirEntry, AuxReleasedOnStateCollapse)
{
    StacheDirEntry e;
    StacheAuxTable aux;
    for (NodeId n = 0; n < 8; ++n)
        e.addSharer(n * 10, 6, 128, aux);
    EXPECT_EQ(aux.sets.size(), 1u);
    e.setExcl(3, aux);
    EXPECT_EQ(aux.sets.size(), 0u) << "aux leaked on setExcl";
}

TEST(StacheDirEntry, SmallerPointerBudget)
{
    // Ablation A3: with 2 pointers, the third sharer overflows.
    StacheDirEntry e;
    StacheAuxTable aux;
    e.addSharer(1, 2, 32, aux);
    e.addSharer(2, 2, 32, aux);
    EXPECT_FALSE(e.bitvecMode());
    e.addSharer(3, 2, 32, aux);
    EXPECT_TRUE(e.bitvecMode());
    EXPECT_EQ(e.sharerCount(aux), 3);
}

} // namespace
} // namespace tt
