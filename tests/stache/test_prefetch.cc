/**
 * @file
 * Tests of software prefetch through the Busy tag (section 5.4's
 * motivating case): latency hiding, nonbinding drops, demand faults
 * overlapping in-flight prefetches, and write-after-prefetch
 * escalation.
 */

#include <gtest/gtest.h>

#include "mem/addr.hh"
#include "tests/helpers.hh"

namespace tt
{
namespace
{

using test::StacheRig;

TEST(StachePrefetch, HidesRemoteFetchLatency)
{
    StacheRig rig(2);
    Addr a = rig.stache->shmalloc(4096, 0);

    Tick coldMiss = 0, prefetched = 0;
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() != 1)
            co_return;
        // Cold demand miss on block 0.
        Tick t0 = cpu.localTime();
        co_await cpu.read<int>(a);
        coldMiss = cpu.localTime() - t0;

        // Prefetch block 2, compute long enough for it to land, then
        // read: only a local miss remains.
        rig.stache->prefetch(cpu, a + 64);
        co_await cpu.compute(500);
        t0 = cpu.localTime();
        co_await cpu.read<int>(a + 64);
        prefetched = cpu.localTime() - t0;
    });
    EXPECT_GT(coldMiss, 100u);
    EXPECT_LE(prefetched, 1u + 29 + 25) << "prefetch failed to hide "
                                           "the protocol latency";
    EXPECT_EQ(rig.mem->tagOf(1, a + 64), AccessTag::ReadOnly);
    EXPECT_TRUE(rig.stache->quiescent());
    EXPECT_EQ(rig.stache->auditCoherence(), 0u);
}

TEST(StachePrefetch, MapsUnmappedPagesFromTheNp)
{
    StacheRig rig(2);
    Addr a = rig.stache->shmalloc(2 * 4096, 0);
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() != 1)
            co_return;
        rig.stache->prefetch(cpu, a + 4096); // page never touched
        co_await cpu.compute(1000);
        const Tick t0 = cpu.localTime();
        int v = co_await cpu.read<int>(a + 4096);
        EXPECT_EQ(v, 0);
        // No page fault, no block fault: page mapped + data landed.
        EXPECT_LE(cpu.localTime() - t0, 1u + 29 + 25 + 25);
    });
    EXPECT_EQ(rig.machine->stats().get("typhoon.page_faults"), 0u);
    EXPECT_EQ(rig.machine->stats().get("typhoon.block_faults"), 0u);
}

TEST(StachePrefetch, DemandFaultDuringFlightWaitsNotDuplicates)
{
    StacheRig rig(2);
    Addr a = rig.stache->shmalloc(4096, 0);
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() != 1)
            co_return;
        rig.stache->prefetch(cpu, a);
        // Touch immediately: the access faults on the Busy tag and
        // must wait for the in-flight data without a second GetRO.
        int v = co_await cpu.read<int>(a);
        EXPECT_EQ(v, 0);
    });
    auto& st = rig.machine->stats();
    EXPECT_EQ(st.get("stache.get_ro"), 1u) << "duplicate request sent";
    EXPECT_EQ(st.get("stache.prefetch_hits_in_flight"), 1u);
    EXPECT_TRUE(rig.stache->quiescent());
    EXPECT_EQ(rig.stache->auditCoherence(), 0u);
}

TEST(StachePrefetch, NonbindingDropsWhenAlreadyPresent)
{
    StacheRig rig(2);
    Addr a = rig.stache->shmalloc(4096, 0);
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() != 1)
            co_return;
        co_await cpu.read<int>(a); // demand fetch
        const auto before = cpu.stats().get("stache.get_ro");
        rig.stache->prefetch(cpu, a); // present: must drop
        rig.stache->prefetch(cpu, a);
        co_await cpu.compute(1000);
        EXPECT_EQ(cpu.stats().get("stache.get_ro"), before);
    });
}

TEST(StachePrefetch, LocalAndUnallocatedTargetsAreDropped)
{
    StacheRig rig(2);
    Addr a = rig.stache->shmalloc(4096, 1); // homed at the requester
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() != 1)
            co_return;
        rig.stache->prefetch(cpu, a);           // local home: drop
        rig.stache->prefetch(cpu, 0x9999'0000); // unallocated: drop
        co_await cpu.compute(1000);
    });
    EXPECT_EQ(rig.machine->stats().get("stache.get_ro"), 0u);
    EXPECT_TRUE(rig.mem->quiescent());
}

TEST(StachePrefetch, WriteAfterPrefetchEscalatesToUpgrade)
{
    StacheRig rig(2);
    Addr a = rig.stache->shmalloc(4096, 0);
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() != 1)
            co_return;
        rig.stache->prefetch(cpu, a);
        co_await cpu.compute(500); // let the RO copy land
        co_await cpu.write<int>(a, 42); // upgrade, dataless grant
        int v = co_await cpu.read<int>(a);
        EXPECT_EQ(v, 42);
    });
    auto& st = rig.machine->stats();
    EXPECT_EQ(st.get("stache.upgrade_grants"), 1u);
    auto view = rig.stache->inspect(a);
    EXPECT_EQ(view.state, StacheDirEntry::State::Excl);
    EXPECT_EQ(view.owner, 1);
}

TEST(StachePrefetch, WriteFaultOnBusyBlockResolvesCleanly)
{
    // Prefetch then write immediately: the write faults on Busy,
    // waits for the RO data, retries, and upgrades — exactly one
    // request outstanding at each step.
    StacheRig rig(2);
    Addr a = rig.stache->shmalloc(4096, 0);
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() != 1)
            co_return;
        rig.stache->prefetch(cpu, a);
        co_await cpu.write<int>(a, 7);
        int v = co_await cpu.read<int>(a);
        EXPECT_EQ(v, 7);
    });
    EXPECT_TRUE(rig.stache->quiescent());
    EXPECT_EQ(rig.stache->auditCoherence(), 0u);
    EXPECT_TRUE(rig.mem->quiescent());
    int out = 0;
    rig.mem->peek(a, &out, 4);
    EXPECT_EQ(out, 7);
}

TEST(StachePrefetch, StreamOfPrefetchesPipelines)
{
    // Prefetching a whole page ahead converts a serial chain of
    // remote misses into pipelined transfers: total time must drop
    // well below blocks x remote-miss latency.
    StacheRig rig(2);
    const int blocks = 64;
    Addr a = rig.stache->shmalloc(blocks * 32 + 4096, 0);

    Tick serial = 0, pipelined = 0;
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() != 1)
            co_return;
        Tick t0 = cpu.localTime();
        for (int i = 0; i < blocks / 2; ++i)
            co_await cpu.read<int>(a + i * 32);
        serial = cpu.localTime() - t0;

        for (int i = blocks / 2; i < blocks; ++i)
            rig.stache->prefetch(cpu, a + i * 32);
        co_await cpu.compute(2000); // overlap window
        t0 = cpu.localTime();
        for (int i = blocks / 2; i < blocks; ++i)
            co_await cpu.read<int>(a + i * 32);
        pipelined = cpu.localTime() - t0;
    });
    EXPECT_LT(pipelined, serial / 2);
}

} // namespace
} // namespace tt
