/**
 * @file
 * Scenario tests of Typhoon/Stache: page-fault allocation, block
 * fetch, invalidation, recall, home faults, replacement, and
 * end-to-end data correctness.
 */

#include <gtest/gtest.h>

#include "mem/addr.hh"
#include "tests/helpers.hh"

namespace tt
{
namespace
{

using test::StacheRig;
using St = StacheDirEntry::State;

TEST(Stache, ShmallocCreatesHomePagesTaggedRW)
{
    StacheRig rig(4);
    Addr a = rig.stache->shmalloc(2 * 4096, /*home=*/1);
    EXPECT_EQ(rig.stache->homeOf(a), 1);
    EXPECT_EQ(rig.stache->homeOf(a + 4096), 1);
    EXPECT_EQ(rig.mem->tagOf(1, a), AccessTag::ReadWrite);
    EXPECT_EQ(rig.mem->tagOf(1, a + 4096 - 32), AccessTag::ReadWrite);
    EXPECT_EQ(rig.mem->pageTableOf(1).lookup(a)->mode,
              Stache::kModeHome);
}

TEST(Stache, HomeAccessesNeedNoProtocol)
{
    StacheRig rig(2);
    Addr a = rig.stache->shmalloc(4096, 0);
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() != 0)
            co_return;
        Tick t0 = cpu.localTime();
        co_await cpu.write<int>(a, 11);
        // 1 instr + 25 TLB miss + 29 local miss (+ possible RTLB miss
        // 25): tag is RW, no NP handler runs.
        EXPECT_EQ(cpu.localTime() - t0, 1u + 25 + 25 + 29);
        int v = co_await cpu.read<int>(a);
        EXPECT_EQ(v, 11);
    });
    EXPECT_EQ(rig.machine->stats().get("np.baf_handled"), 0u);
    EXPECT_EQ(rig.machine->stats().get("stache.page_faults"), 0u);
}

TEST(Stache, RemoteReadFaultsFetchesAndCaches)
{
    StacheRig rig(2);
    Addr a = rig.stache->shmalloc(4096, 0);
    int seen = -1;
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 0) {
            co_await cpu.write<int>(a, 77);
        }
        co_await rig.machine->barrier().wait(cpu);
        if (cpu.id() == 1) {
            seen = co_await cpu.read<int>(a);
            // Second read: pure cache hit, no protocol.
            const Tick t0 = cpu.localTime();
            co_await cpu.read<int>(a);
            EXPECT_EQ(cpu.localTime() - t0, 1u);
        }
    });
    EXPECT_EQ(seen, 77);
    // Node 1 took one page fault and one block fault.
    EXPECT_EQ(rig.machine->stats().get("stache.page_faults"), 1u);
    EXPECT_EQ(rig.machine->stats().get("stache.get_ro"), 1u);
    auto v = rig.stache->inspect(a);
    EXPECT_EQ(v.state, St::Shared);
    EXPECT_EQ(v.sharers, std::vector<NodeId>{1});
    // Home tag downgraded to ReadOnly; stache copy ReadOnly.
    EXPECT_EQ(rig.mem->tagOf(0, a), AccessTag::ReadOnly);
    EXPECT_EQ(rig.mem->tagOf(1, a), AccessTag::ReadOnly);
    EXPECT_TRUE(rig.stache->quiescent());
    EXPECT_TRUE(rig.mem->quiescent());
}

TEST(Stache, RemoteWriteTakesExclusiveAndInvalidatesHome)
{
    StacheRig rig(2);
    Addr a = rig.stache->shmalloc(4096, 0);
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 1)
            co_await cpu.write<int>(a, 123);
    });
    auto v = rig.stache->inspect(a);
    EXPECT_EQ(v.state, St::Excl);
    EXPECT_EQ(v.owner, 1);
    EXPECT_EQ(rig.mem->tagOf(0, a), AccessTag::Invalid);
    EXPECT_EQ(rig.mem->tagOf(1, a), AccessTag::ReadWrite);
    int out = 0;
    rig.mem->peek(a, &out, 4); // authoritative copy = owner's
    EXPECT_EQ(out, 123);
}

TEST(Stache, WriterInvalidatesSharersViaFinalAckDataSend)
{
    StacheRig rig(4);
    Addr a = rig.stache->shmalloc(4096, 0);
    StacheRig* r = &rig;
    rig.run([&, r](Cpu& cpu) -> Task<void> {
        co_await cpu.read<int>(a); // 1..3 become sharers
        co_await r->machine->barrier().wait(cpu);
        if (cpu.id() == 2)
            co_await cpu.write<int>(a, 5);
        co_await r->machine->barrier().wait(cpu);
        int v = co_await cpu.read<int>(a);
        EXPECT_EQ(v, 5);
    });
    EXPECT_GE(rig.machine->stats().get("stache.invals_sent"), 2u);
    EXPECT_TRUE(rig.stache->quiescent());
    EXPECT_TRUE(rig.mem->quiescent());
}

TEST(Stache, ReadOfDirtyRemoteBlockDowngradesOwner)
{
    StacheRig rig(3);
    Addr a = rig.stache->shmalloc(4096, 0);
    StacheRig* r = &rig;
    rig.run([&, r](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 1)
            co_await cpu.write<int>(a, 9);
        co_await r->machine->barrier().wait(cpu);
        if (cpu.id() == 2) {
            int v = co_await cpu.read<int>(a);
            EXPECT_EQ(v, 9);
        }
    });
    EXPECT_EQ(rig.machine->stats().get("stache.recalls"), 1u);
    auto v = rig.stache->inspect(a);
    EXPECT_EQ(v.state, St::Shared);
    EXPECT_EQ(v.sharers, (std::vector<NodeId>{1, 2}));
    // Owner kept a read-only copy; home regained a read-only copy.
    EXPECT_EQ(rig.mem->tagOf(1, a), AccessTag::ReadOnly);
    EXPECT_EQ(rig.mem->tagOf(0, a), AccessTag::ReadOnly);
}

TEST(Stache, HomeFaultRecallsDirtyRemoteBlock)
{
    StacheRig rig(2);
    Addr a = rig.stache->shmalloc(4096, 0);
    StacheRig* r = &rig;
    rig.run([&, r](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 1)
            co_await cpu.write<int>(a, 31);
        co_await r->machine->barrier().wait(cpu);
        if (cpu.id() == 0) {
            int v = co_await cpu.read<int>(a); // home fault
            EXPECT_EQ(v, 31);
        }
    });
    EXPECT_EQ(rig.machine->stats().get("stache.home_faults"), 1u);
    EXPECT_EQ(rig.mem->tagOf(0, a), AccessTag::ReadOnly);
}

TEST(Stache, HomeWriteFaultInvalidatesAllSharers)
{
    StacheRig rig(4);
    Addr a = rig.stache->shmalloc(4096, 0);
    StacheRig* r = &rig;
    rig.run([&, r](Cpu& cpu) -> Task<void> {
        if (cpu.id() != 0)
            co_await cpu.read<int>(a);
        co_await r->machine->barrier().wait(cpu);
        if (cpu.id() == 0)
            co_await cpu.write<int>(a, 1); // home write fault (tag RO)
        co_await r->machine->barrier().wait(cpu);
        int v = co_await cpu.read<int>(a);
        EXPECT_EQ(v, 1);
    });
    auto v = rig.stache->inspect(a);
    EXPECT_EQ(v.state, St::Shared); // re-read by 1..3 after barrier
    EXPECT_TRUE(rig.stache->quiescent());
}

TEST(Stache, StachePageReplacementWritesDirtyBlocksHome)
{
    // Pool of 2 stache pages; touching 4 remote pages forces two FIFO
    // replacements with dirty writebacks.
    StacheParams sp;
    sp.maxStachePages = 2;
    StacheRig rig(2, CoreParams{}, TyphoonParams{}, sp);
    Addr a = rig.stache->shmalloc(4 * 4096, /*home=*/0);
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() != 1)
            co_return;
        for (int p = 0; p < 4; ++p)
            co_await cpu.write<int>(a + p * 4096 + 64, 100 + p);
        // Re-read everything: replaced pages re-fault and re-fetch
        // from home, proving the writebacks carried the data.
        for (int p = 0; p < 4; ++p) {
            int v = co_await cpu.read<int>(a + p * 4096 + 64);
            EXPECT_EQ(v, 100 + p);
        }
    });
    EXPECT_GT(rig.machine->stats().get("stache.page_replacements"), 0u);
    EXPECT_GT(rig.machine->stats().get("stache.writebacks"), 0u);
    EXPECT_EQ(rig.stache->stachePagesAt(1), 2u);
    EXPECT_TRUE(rig.stache->quiescent());
}

TEST(Stache, SilentCleanDropToleratesStaleSharerInvalidation)
{
    // Node 1 reads (becomes sharer), then its page is replaced
    // (silent drop). Node 0 then writes: the invalidation goes to a
    // node that no longer has the page and must be acked as a no-op.
    StacheParams sp;
    sp.maxStachePages = 1;
    StacheRig rig(3, CoreParams{}, TyphoonParams{}, sp);
    Addr a = rig.stache->shmalloc(2 * 4096, /*home=*/0);
    StacheRig* r = &rig;
    rig.run([&, r](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 1) {
            co_await cpu.read<int>(a);          // share page 0
            co_await cpu.read<int>(a + 4096);   // replaces page 0
        }
        co_await r->machine->barrier().wait(cpu);
        if (cpu.id() == 2)
            co_await cpu.write<int>(a, 7); // inv goes to stale sharer 1
        co_await r->machine->barrier().wait(cpu);
        if (cpu.id() == 0) {
            int v = co_await cpu.read<int>(a);
            EXPECT_EQ(v, 7);
        }
    });
    EXPECT_TRUE(rig.stache->quiescent());
    EXPECT_TRUE(rig.mem->quiescent());
}

TEST(Stache, PingPongOwnershipUnderLock)
{
    StacheRig rig(3);
    Addr a = rig.stache->shmalloc(4096, 2);
    SimLock lock(rig.machine->eq(), rig.cp.lockLatency);
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 2)
            co_return;
        for (int i = 0; i < 20; ++i) {
            co_await lock.acquire(cpu);
            int v = co_await cpu.read<int>(a);
            co_await cpu.write<int>(a, v + 1);
            lock.release(cpu);
        }
    });
    int out = 0;
    rig.mem->peek(a, &out, 4);
    EXPECT_EQ(out, 40);
    EXPECT_TRUE(rig.stache->quiescent());
}

TEST(Stache, FalseSharingStormAcrossEightNodes)
{
    StacheRig rig(8);
    Addr a = rig.stache->shmalloc(4096, 0);
    StacheRig* r = &rig;
    rig.run([&, r](Cpu& cpu) -> Task<void> {
        for (int round = 0; round < 4; ++round) {
            co_await cpu.write<int>(a + cpu.id() * 4,
                                    100 * round + cpu.id());
            co_await r->machine->barrier().wait(cpu);
        }
    });
    for (int i = 0; i < 8; ++i) {
        int out = 0;
        rig.mem->peek(a + i * 4, &out, 4);
        EXPECT_EQ(out, 300 + i);
    }
    EXPECT_TRUE(rig.stache->quiescent());
    EXPECT_TRUE(rig.mem->quiescent());
}

TEST(Stache, StacheActsAsLevelThreeCache)
{
    // The paper's headline effect: a working set larger than the CPU
    // cache but stached locally is re-read at local-miss cost, with
    // no additional protocol traffic.
    CoreParams cp;
    cp.cacheSize = 4096; // tiny CPU cache
    StacheRig rig(2, cp);
    const int blocks = 512; // 16 KB working set on 4 pages
    Addr a = rig.stache->shmalloc(blocks * 32, /*home=*/0);
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() != 1)
            co_return;
        for (int i = 0; i < blocks; ++i)
            co_await cpu.read<int>(a + i * 32); // fetch everything
        const auto fetches =
            cpu.stats().get("stache.get_ro");
        // Second sweep: capacity misses hit the local stache pages.
        for (int i = 0; i < blocks; ++i)
            co_await cpu.read<int>(a + i * 32);
        EXPECT_EQ(cpu.stats().get("stache.get_ro"), fetches)
            << "re-sweep must not send protocol requests";
    });
    EXPECT_EQ(rig.machine->stats().get("stache.get_ro"),
              static_cast<std::uint64_t>(blocks));
}

TEST(Stache, PokeAndPeekRespectReplicas)
{
    StacheRig rig(2);
    Addr a = rig.stache->shmalloc(4096, 0);
    double v = 6.5;
    rig.stache->poke(a, &v, sizeof(v));
    double out = 0;
    rig.stache->peek(a, &out, sizeof(out));
    EXPECT_DOUBLE_EQ(out, 6.5);
    // After a remote write, peek follows the owner.
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 1)
            co_await cpu.write<double>(a, 9.25);
    });
    rig.stache->peek(a, &out, sizeof(out));
    EXPECT_DOUBLE_EQ(out, 9.25);
}

} // namespace
} // namespace tt
