/**
 * @file
 * Property/fuzz tests of the Stache protocol: serial reference
 * checking, concurrent phased traffic, replacement pressure, and
 * cross-system equivalence (the same program must compute identical
 * data on DirNNB and Typhoon/Stache — under Stache the data really
 * moves between per-node memories, so this checks the protocol, not
 * the scoreboard).
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "mem/addr.hh"
#include "sim/random.hh"
#include "tests/helpers.hh"

namespace tt
{
namespace
{

using test::DirRig;
using test::StacheRig;

void
serialFuzzStache(std::uint64_t seed, int nodes, int blocks,
                 std::uint64_t cache_size, std::uint32_t max_pages)
{
    CoreParams cp;
    cp.cacheSize = cache_size;
    StacheParams sp;
    sp.maxStachePages = max_pages;
    StacheRig rig(nodes, cp, TyphoonParams{}, sp);
    const Addr base = rig.stache->shmalloc(
        static_cast<std::size_t>(blocks) * 32 + 4096);

    struct Op
    {
        int node;
        Addr addr;
        bool isWrite;
        std::uint32_t value;
    };
    Rng rng(seed);
    std::vector<Op> ops;
    for (int i = 0; i < 1200; ++i) {
        Op op;
        op.node = static_cast<int>(rng.below(nodes));
        op.addr = base + rng.below(blocks) * 32 + rng.below(8) * 4;
        op.isWrite = rng.chance(0.45);
        op.value = static_cast<std::uint32_t>(rng.next());
        ops.push_back(op);
    }

    std::vector<std::uint32_t> observed(ops.size(), 0);
    StacheRig* r = &rig;
    rig.run([&, r](Cpu& cpu) -> Task<void> {
        for (std::size_t i = 0; i < ops.size(); ++i) {
            const Op& op = ops[i];
            if (op.node == cpu.id()) {
                if (op.isWrite)
                    co_await cpu.write<std::uint32_t>(op.addr,
                                                      op.value);
                else
                    observed[i] =
                        co_await cpu.read<std::uint32_t>(op.addr);
            }
            co_await r->machine->barrier().wait(cpu);
        }
    });

    std::map<Addr, std::uint32_t> ref;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const Op& op = ops[i];
        if (op.isWrite) {
            ref[op.addr] = op.value;
        } else {
            const auto it = ref.find(op.addr);
            EXPECT_EQ(observed[i], it == ref.end() ? 0 : it->second)
                << "op " << i << " node " << op.node;
        }
    }
    EXPECT_TRUE(rig.stache->quiescent());
    EXPECT_EQ(rig.stache->auditCoherence(), 0u);
    EXPECT_TRUE(rig.mem->quiescent());
    for (const auto& [addr, val] : ref) {
        std::uint32_t out = 0;
        rig.mem->peek(addr, &out, 4);
        EXPECT_EQ(out, val);
    }
}

TEST(StacheFuzz, SerialSmallCache)
{
    serialFuzzStache(11, 4, 8, 256, 1u << 20);
}

TEST(StacheFuzz, SerialManyNodes)
{
    serialFuzzStache(12, 8, 16, 1024, 1u << 20);
}

TEST(StacheFuzz, SerialWithPageReplacementPressure)
{
    // Blocks span multiple pages; each node may stache only one page,
    // so the FIFO replacement path runs constantly.
    serialFuzzStache(13, 4, 384, 64 * 1024, 1);
}

TEST(StacheFuzz, ConcurrentOwnerComputePhases)
{
    const int nodes = 6;
    const int wordsPerNode = 48;
    CoreParams cp;
    cp.cacheSize = 1024;
    StacheRig rig(nodes, cp);
    const Addr base =
        rig.stache->shmalloc(nodes * wordsPerNode * 4 + 4096);

    std::vector<std::vector<std::uint32_t>> expected(
        nodes, std::vector<std::uint32_t>(wordsPerNode, 0));
    std::atomic<int> failures{0};
    StacheRig* r = &rig;
    rig.run([&, r](Cpu& cpu) -> Task<void> {
        Rng rng(2000 + cpu.id());
        for (int ph = 0; ph < 5; ++ph) {
            for (int w = 0; w < wordsPerNode; ++w) {
                if (rng.chance(0.5)) {
                    const std::uint32_t v =
                        (ph + 1) * 1000u + cpu.id() * 100u + w;
                    expected[cpu.id()][w] = v;
                    co_await cpu.write<std::uint32_t>(
                        base + (cpu.id() * wordsPerNode + w) * 4, v);
                }
            }
            co_await r->machine->barrier().wait(cpu);
            for (int k = 0; k < 24; ++k) {
                const int n = static_cast<int>(rng.below(nodes));
                const int w =
                    static_cast<int>(rng.below(wordsPerNode));
                const std::uint32_t v =
                    co_await cpu.read<std::uint32_t>(
                        base + (n * wordsPerNode + w) * 4);
                if (v != expected[n][w])
                    ++failures;
            }
            co_await r->machine->barrier().wait(cpu);
        }
    });
    EXPECT_EQ(failures.load(), 0);
    EXPECT_TRUE(rig.stache->quiescent());
    EXPECT_EQ(rig.stache->auditCoherence(), 0u);
}

TEST(StacheFuzz, CrossSystemEquivalenceWithDirNNB)
{
    // The same deterministic phased program on both targets must
    // leave identical memory images.
    const int nodes = 4;
    const int words = 128;
    auto runProgram = [&](auto& rig, Addr base,
                          std::vector<std::uint32_t>& image) {
        auto* r = &rig;
        rig.run([&, r, base](Cpu& cpu) -> Task<void> {
            Rng rng(500 + cpu.id());
            for (int ph = 0; ph < 4; ++ph) {
                for (int k = 0; k < 40; ++k) {
                    const int w = static_cast<int>(rng.below(words));
                    // Owner-computes: node writes only words w with
                    // w % nodes == id; everyone reads anything.
                    if (w % nodes == cpu.id() && rng.chance(0.6)) {
                        co_await cpu.write<std::uint32_t>(
                            base + w * 4,
                            (ph + 1) * 10000u + w);
                    } else {
                        co_await cpu.read<std::uint32_t>(base + w * 4);
                    }
                }
                co_await r->machine->barrier().wait(cpu);
            }
        });
        image.resize(words);
        for (int w = 0; w < words; ++w)
            rig.mem->peek(base + w * 4, &image[w], 4);
    };

    CoreParams cp;
    cp.cacheSize = 512;
    std::vector<std::uint32_t> imgDir, imgStache;
    {
        DirRig rig(nodes, cp);
        Addr base = rig.mem->shmalloc(words * 4);
        runProgram(rig, base, imgDir);
    }
    {
        StacheRig rig(nodes, cp);
        Addr base = rig.stache->shmalloc(words * 4);
        runProgram(rig, base, imgStache);
    }
    EXPECT_EQ(imgDir, imgStache);
}

TEST(StacheFuzz, DeterministicAcrossRuns)
{
    auto runOnce = [] {
        CoreParams cp;
        cp.cacheSize = 512;
        StacheRig rig(4, cp);
        const Addr base = rig.stache->shmalloc(64 * 32);
        StacheRig* r = &rig;
        auto res = rig.run([&, r](Cpu& cpu) -> Task<void> {
            Rng rng(7 + cpu.id());
            for (int i = 0; i < 150; ++i) {
                const Addr a =
                    base + (cpu.id() * 16 + rng.below(16)) * 32;
                if (rng.chance(0.5))
                    co_await cpu.write<int>(a, i);
                else
                    co_await cpu.read<int>(a);
            }
            co_await r->machine->barrier().wait(cpu);
        });
        return res.execTime;
    };
    EXPECT_EQ(runOnce(), runOnce());
}

} // namespace
} // namespace tt
