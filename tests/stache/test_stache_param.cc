/**
 * @file
 * Parameterized property sweeps: the Stache protocol must deliver
 * correct data and reach quiescence across the whole configuration
 * space the paper discusses — block sizes 32/64/128 (section 2.4),
 * CPU cache sizes, quantum settings, and machine widths (including
 * >32 nodes, which exercises the aux-structure directory format).
 */

#include <gtest/gtest.h>

#include <map>

#include "mem/addr.hh"
#include "sim/random.hh"
#include "tests/helpers.hh"

namespace tt
{
namespace
{

using test::StacheRig;

struct SweepCfg
{
    std::uint32_t blockSize;
    std::uint64_t cacheSize;
    Tick quantum;
    int nodes;

    friend std::ostream&
    operator<<(std::ostream& os, const SweepCfg& c)
    {
        return os << "b" << c.blockSize << "_c" << c.cacheSize << "_q"
                  << c.quantum << "_n" << c.nodes;
    }
};

class StacheSweep : public ::testing::TestWithParam<SweepCfg>
{
};

TEST_P(StacheSweep, SerialFuzzMatchesReference)
{
    const SweepCfg cfg = GetParam();
    CoreParams cp;
    cp.blockSize = cfg.blockSize;
    cp.cacheSize = cfg.cacheSize;
    cp.quantum = cfg.quantum;
    StacheRig rig(cfg.nodes, cp);

    const int blocks = 24;
    const Addr base =
        rig.stache->shmalloc(blocks * cfg.blockSize + 4096);

    struct Op
    {
        int node;
        Addr addr;
        bool isWrite;
        std::uint32_t value;
    };
    Rng rng(cfg.blockSize * 131 + cfg.nodes);
    std::vector<Op> ops;
    for (int i = 0; i < 600; ++i) {
        ops.push_back(Op{static_cast<int>(rng.below(cfg.nodes)),
                         base + rng.below(blocks) * cfg.blockSize +
                             rng.below(cfg.blockSize / 4) * 4,
                         rng.chance(0.45),
                         static_cast<std::uint32_t>(rng.next())});
    }

    std::vector<std::uint32_t> observed(ops.size(), 0);
    StacheRig* r = &rig;
    rig.run([&, r](Cpu& cpu) -> Task<void> {
        for (std::size_t i = 0; i < ops.size(); ++i) {
            if (ops[i].node == cpu.id()) {
                if (ops[i].isWrite)
                    co_await cpu.write<std::uint32_t>(ops[i].addr,
                                                      ops[i].value);
                else
                    observed[i] = co_await cpu.read<std::uint32_t>(
                        ops[i].addr);
            }
            co_await r->machine->barrier().wait(cpu);
        }
    });

    std::map<Addr, std::uint32_t> ref;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].isWrite)
            ref[ops[i].addr] = ops[i].value;
        else {
            auto it = ref.find(ops[i].addr);
            ASSERT_EQ(observed[i], it == ref.end() ? 0 : it->second)
                << "op " << i;
        }
    }
    EXPECT_TRUE(rig.stache->quiescent());
    EXPECT_EQ(rig.stache->auditCoherence(), 0u);
    EXPECT_TRUE(rig.mem->quiescent());
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSpace, StacheSweep,
    ::testing::Values(SweepCfg{32, 1024, 32, 4},
                      SweepCfg{64, 1024, 32, 4},
                      SweepCfg{128, 2048, 32, 4},
                      SweepCfg{32, 512, 0, 4},
                      SweepCfg{32, 1024, 128, 4},
                      SweepCfg{32, 4096, 32, 40}, // aux-format dir
                      SweepCfg{64, 65536, 32, 8}),
    [](const auto& info) {
        std::ostringstream oss;
        oss << info.param;
        return oss.str();
    });

/**
 * The quantum must never change simulated *results*, and its timing
 * perturbation must be small (it is a bounded conservative window).
 */
TEST(StacheQuantum, ResultsInvariantTimingNearlySo)
{
    auto runAt = [](Tick q) {
        CoreParams cp;
        cp.quantum = q;
        cp.cacheSize = 2048;
        StacheRig rig(6, cp);
        const Addr base = rig.stache->shmalloc(64 * 32);
        std::uint64_t sum = 0;
        StacheRig* r = &rig;
        auto res = rig.run([&, r](Cpu& cpu) -> Task<void> {
            Rng rng(17 + cpu.id());
            for (int ph = 0; ph < 4; ++ph) {
                for (int i = 0; i < 50; ++i) {
                    const Addr a = base + ((i * 6 + cpu.id()) % 64) * 32;
                    if ((i + cpu.id()) % 3 == 0)
                        co_await cpu.write<std::uint32_t>(
                            a + cpu.id() * 4, i + ph);
                    else
                        sum += co_await cpu.read<std::uint32_t>(
                            a + (i % 8) * 4);
                }
                co_await r->machine->barrier().wait(cpu);
            }
        });
        return std::pair<std::uint64_t, Tick>(sum, res.execTime);
    };
    const auto [sum0, t0] = runAt(0);
    const auto [sum32, t32] = runAt(32);
    const auto [sum128, t128] = runAt(128);
    EXPECT_EQ(sum0, sum32);
    EXPECT_EQ(sum0, sum128);
    // Timing stays within a few percent of the fully-ordered run.
    EXPECT_NEAR(static_cast<double>(t32), static_cast<double>(t0),
                0.05 * t0);
    EXPECT_NEAR(static_cast<double>(t128), static_cast<double>(t0),
                0.10 * t0);
}

/** Aux-format directories behave on a 40-node (>32) machine. */
TEST(StacheWideMachine, ManyReadersThenWriter)
{
    StacheRig rig(40);
    Addr a = rig.stache->shmalloc(4096, 0);
    StacheRig* r = &rig;
    rig.run([&, r](Cpu& cpu) -> Task<void> {
        if (cpu.id() != 0)
            co_await cpu.read<int>(a);
        co_await r->machine->barrier().wait(cpu);
        if (cpu.id() == 39)
            co_await cpu.write<int>(a, 7);
        co_await r->machine->barrier().wait(cpu);
        int v = co_await cpu.read<int>(a);
        EXPECT_EQ(v, 7);
    });
    auto view = rig.stache->inspect(a);
    EXPECT_EQ(view.state, StacheDirEntry::State::Shared);
    // Home (node 0) holds a read-only copy but is not tracked in the
    // sharer list; the other 39 nodes are.
    EXPECT_EQ(view.sharers.size(), 39u);
    EXPECT_EQ(rig.mem->tagOf(0, a), AccessTag::ReadOnly);
    // With 40 nodes the bit vector cannot hold the set: aux mode.
    EXPECT_TRUE((view.raw >> 60) & 1) << "expected aux-format entry";
    EXPECT_TRUE(rig.stache->quiescent());
    EXPECT_EQ(rig.stache->auditCoherence(), 0u);
}

} // namespace
} // namespace tt
