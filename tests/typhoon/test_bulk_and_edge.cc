/**
 * @file
 * Edge cases of Typhoon's mechanisms: bulk transfers crossing page
 * boundaries, queued transfers, odd lengths, message-handler
 * interleaving with bulk traffic, RTLB timing, and CPU-send costs.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/addr.hh"
#include "tests/helpers.hh"

namespace tt
{
namespace
{

using test::StacheRig;

struct BulkRig
{
    StacheRig rig{2};
    Addr src = 0, dst = 0;

    BulkRig()
    {
        // Use Stache home pages as plain mapped memory on both sides.
        src = rig.stache->shmalloc(3 * 4096, 0);
        dst = rig.stache->shmalloc(3 * 4096, 1);
    }

    void
    fillSource(std::size_t len)
    {
        std::vector<std::uint8_t> img(len);
        for (std::size_t i = 0; i < len; ++i)
            img[i] = static_cast<std::uint8_t>(i * 13 + 1);
        rig.mem->physOf(0).write(
            rig.mem->pageTableOf(0).translate(src), img.data(),
            std::min<std::size_t>(len, 4096));
        // For multi-page sources write page by page.
        for (std::size_t off = 4096; off < len; off += 4096) {
            rig.mem->physOf(0).write(
                rig.mem->pageTableOf(0).translate(src + off),
                img.data() + off, std::min<std::size_t>(4096, len - off));
        }
    }

    std::vector<std::uint8_t>
    readDest(std::size_t len)
    {
        std::vector<std::uint8_t> out(len);
        for (std::size_t off = 0; off < len; off += 4096) {
            rig.mem->physOf(1).read(
                rig.mem->pageTableOf(1).translate(dst + off),
                out.data() + off, std::min<std::size_t>(4096, len - off));
        }
        return out;
    }

    void
    transferAndDrain(std::size_t len)
    {
        rig.mem->tempest(0).setupCtx().bulkTransfer(
            src, 1, dst, static_cast<std::uint32_t>(len), 0);
        test::FnApp app([&](Cpu& cpu) -> Task<void> {
            co_await cpu.compute(100000);
        });
        rig.machine->run(app);
    }
};

TEST(TyphoonBulk, MultiPageTransferCrossesPageBoundaries)
{
    BulkRig b;
    const std::size_t len = 2 * 4096 + 512;
    b.fillSource(len);
    b.transferAndDrain(len);
    auto out = b.readDest(len);
    for (std::size_t i = 0; i < len; ++i)
        ASSERT_EQ(out[i], static_cast<std::uint8_t>(i * 13 + 1))
            << "byte " << i;
}

TEST(TyphoonBulk, OddLengthLastChunk)
{
    BulkRig b;
    const std::size_t len = 64 + 37; // last packet carries 37 bytes
    b.fillSource(len);
    b.transferAndDrain(len);
    auto out = b.readDest(len);
    for (std::size_t i = 0; i < len; ++i)
        ASSERT_EQ(out[i], static_cast<std::uint8_t>(i * 13 + 1));
    EXPECT_EQ(b.rig.machine->stats().get("np.bulk_packets"), 2u);
}

TEST(TyphoonBulk, QueuedTransfersAllComplete)
{
    BulkRig b;
    b.fillSource(4096);
    TempestCtx& ctx = b.rig.mem->tempest(0).setupCtx();
    // Three transfers to different destination offsets.
    ctx.bulkTransfer(b.src, 1, b.dst, 256, 0);
    ctx.bulkTransfer(b.src + 256, 1, b.dst + 256, 256, 0);
    ctx.bulkTransfer(b.src + 512, 1, b.dst + 512, 256, 0);
    test::FnApp app([&](Cpu& cpu) -> Task<void> {
        co_await cpu.compute(100000);
    });
    b.rig.machine->run(app);
    auto out = b.readDest(768);
    for (std::size_t i = 0; i < 768; ++i)
        ASSERT_EQ(out[i], static_cast<std::uint8_t>(i * 13 + 1));
}

TEST(TyphoonBulk, OverlapsWithProtocolTraffic)
{
    // A bulk transfer streams while the destination node also serves
    // Stache misses: both must complete, and message handlers must
    // preempt between bulk packets (the NP's status-handler
    // rescheduling of the transfer thread).
    BulkRig b;
    b.fillSource(4096);
    b.rig.mem->tempest(0).setupCtx().bulkTransfer(b.src, 1, b.dst,
                                                  4096, 0);
    Addr shared = b.rig.stache->shmalloc(4096, 0);
    int got = 0;
    test::FnApp app([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 1) {
            // Remote fetches interleave with the 64 bulk packets.
            for (int i = 0; i < 16; ++i)
                got += co_await cpu.read<int>(shared + i * 32) == 0;
        }
        co_await cpu.compute(200000);
    });
    b.rig.machine->run(app);
    EXPECT_EQ(got, 16);
    auto out = b.readDest(4096);
    for (std::size_t i = 0; i < 4096; ++i)
        ASSERT_EQ(out[i], static_cast<std::uint8_t>(i * 13 + 1));
    EXPECT_EQ(b.rig.machine->stats().get("np.bulk_packets"), 64u);
}

TEST(TyphoonTiming, RtlbMissChargesRefetchPenalty)
{
    StacheRig rig(1);
    // 65 home pages: one more than the 64-entry RTLB.
    Addr a = rig.stache->shmalloc(65 * 4096, 0);
    rig.run([&](Cpu& cpu) -> Task<void> {
        // Touch 65 pages to roll the RTLB (FIFO), then touch the
        // first page's *second block*: CPU cache misses, RTLB misses.
        for (int p = 0; p < 65; ++p)
            co_await cpu.read<int>(a + p * 4096);
        const Tick t0 = cpu.localTime();
        co_await cpu.read<int>(a + 32);
        // 1 instr + 29 local miss + 25 RTLB refetch (CPU TLB also
        // rolled: 64 entries, +25).
        EXPECT_EQ(cpu.localTime() - t0, 1u + 29 + 25 + 25);
    });
    EXPECT_GT(rig.machine->stats().get("typhoon.rtlb_misses"), 0u);
}

TEST(TyphoonTiming, CpuSendChargesPerWord)
{
    StacheRig rig(2);
    rig.mem->tempest(1).registerMsgHandler(
        0x900, [](TempestCtx& ctx, const Message&) { ctx.charge(1); });
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 0) {
            const Tick t0 = cpu.localTime();
            rig.mem->cpuSend(cpu, 1, 0x900, {1, 2, 3});
            // setup 2 + 4 words (handler + 3 args).
            EXPECT_EQ(cpu.localTime() - t0,
                      rig.tp.sendSetupCost + 4 * rig.tp.perWordCost);
        }
        co_await cpu.compute(1000);
    });
}

TEST(TyphoonVm, WriteToReadOnlyPageTrapsToUserHandler)
{
    // Section 2.3: page-level copy-on-write built from the VM
    // mechanisms — write-protect a page, take the user-level trap on
    // the first store, grant write access, and continue.
    StacheRig rig(2);
    Addr a = rig.stache->shmalloc(2 * 4096, 1); // local pages, node 1
    int protFaults = 0;
    // Wrap the protocol's page-fault handler with a protection-aware
    // one (a real protocol layer would do the same composition).
    rig.mem->tempest(1).registerPageFaultHandler(
        [&](TempestCtx& ctx, Addr va, MemOp op) {
            if (ctx.pageMapped(va) && !ctx.pageWritable(va) &&
                op == MemOp::Write) {
                ++protFaults;
                ctx.charge(30); // snapshot the page
                ctx.setPageWritable(va, true);
                return;
            }
            tt_panic("unexpected page fault in this test");
        });

    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() != 1)
            co_return;
        co_await cpu.write<int>(a, 1); // warm, writable
        TempestCtx& ctx = rig.mem->tempest(1).setupCtx();
        ctx.setPageWritable(a, false);
        int v = co_await cpu.read<int>(a); // reads unaffected
        EXPECT_EQ(v, 1);
        co_await cpu.write<int>(a + 8, 2); // traps once
        co_await cpu.write<int>(a + 16, 3); // writable again
        EXPECT_EQ(co_await cpu.read<int>(a + 16), 3);
    });
    EXPECT_EQ(protFaults, 1);
}

TEST(TyphoonTiming, NpRunsHandlersNonPreemptively)
{
    // While a long handler runs, a BAF must wait for completion:
    // measure that the fault service time includes the residual
    // handler occupancy.
    StacheRig rig(2);
    Addr a = rig.stache->shmalloc(4096, 0);
    constexpr HandlerId kBusy = 0x901;
    rig.mem->tempest(1).registerMsgHandler(
        kBusy, [](TempestCtx& ctx, const Message&) {
            ctx.charge(5000);
        });
    Tick missTime = 0;
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 0) {
            // Occupy node 1's NP just before its CPU faults.
            rig.mem->cpuSend(cpu, 1, kBusy, {});
        }
        if (cpu.id() == 1) {
            co_await cpu.compute(100); // let the busy handler start
            const Tick t0 = cpu.localTime();
            co_await cpu.read<int>(a); // fault waits behind kBusy
            missTime = cpu.localTime() - t0;
        }
        co_await cpu.compute(10000);
    });
    EXPECT_GT(missTime, 4000u)
        << "the BAF should have queued behind the busy handler";
}

} // namespace
} // namespace tt
