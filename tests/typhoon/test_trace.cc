/**
 * @file
 * Tests of the protocol trace ring: exact event sequences for the
 * canonical Stache flows, ring-capacity behaviour, and the
 * off-by-default contract.
 */

#include <gtest/gtest.h>

#include <vector>

#include "tests/helpers.hh"

namespace tt
{
namespace
{

using test::StacheRig;
using TE = TyphoonMemSystem::TraceEvent;

std::vector<std::pair<TE::Kind, std::uint32_t>>
kindsOf(const std::deque<TE>& trace)
{
    std::vector<std::pair<TE::Kind, std::uint32_t>> out;
    for (const TE& e : trace)
        out.emplace_back(e.kind, e.id);
    return out;
}

TEST(TyphoonTrace, OffByDefault)
{
    StacheRig rig(2);
    Addr a = rig.stache->shmalloc(4096, 0);
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 1)
            co_await cpu.read<int>(a);
    });
    EXPECT_TRUE(rig.mem->trace().empty());
}

TEST(TyphoonTrace, RemoteReadMissProducesTheCanonicalSequence)
{
    TyphoonParams tp;
    tp.traceCapacity = 64;
    StacheRig rig(2, CoreParams{}, tp);
    Addr a = rig.stache->shmalloc(4096, 0);
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 1)
            co_await cpu.read<int>(a);
    });

    const auto seq = kindsOf(rig.mem->trace());
    // page fault (CPU) -> BAF handler (GetRO sent) -> home GetRO
    // handler -> data arrival handler (which resumes).
    ASSERT_EQ(seq.size(), 5u);
    EXPECT_EQ(seq[0].first, TE::Kind::PageFault);
    EXPECT_EQ(seq[1].first, TE::Kind::FaultHandler);
    EXPECT_EQ(seq[1].second, Stache::kModeStache);
    EXPECT_EQ(seq[2].first, TE::Kind::MsgHandler);
    EXPECT_EQ(seq[2].second,
              static_cast<std::uint32_t>(Stache::kGetRO));
    EXPECT_EQ(seq[3].first, TE::Kind::Resume);
    EXPECT_EQ(seq[4].first, TE::Kind::MsgHandler);
    EXPECT_EQ(seq[4].second,
              static_cast<std::uint32_t>(Stache::kDataRO));

    // Ticks are monotone and nodes alternate requester/home.
    const auto& tr = rig.mem->trace();
    for (std::size_t i = 1; i < tr.size(); ++i)
        EXPECT_GE(tr[i].tick, tr[i - 1].tick);
    EXPECT_EQ(tr[0].node, 1);
    EXPECT_EQ(tr[2].node, 0);
    EXPECT_EQ(tr[4].node, 1);
}

TEST(TyphoonTrace, WriteAfterReadShowsUpgradeFlow)
{
    TyphoonParams tp;
    tp.traceCapacity = 64;
    StacheRig rig(2, CoreParams{}, tp);
    Addr a = rig.stache->shmalloc(4096, 0);
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 1) {
            co_await cpu.read<int>(a);
            co_await cpu.write<int>(a, 9);
        }
    });
    // The tail must be: BAF(write) -> home GetRW -> DataRW arrival.
    const auto seq = kindsOf(rig.mem->trace());
    ASSERT_GE(seq.size(), 3u);
    const auto n = seq.size();
    EXPECT_EQ(seq[n - 3].second,
              static_cast<std::uint32_t>(Stache::kGetRW));
    EXPECT_EQ(seq[n - 1].second,
              static_cast<std::uint32_t>(Stache::kDataRW));
}

TEST(TyphoonTrace, RingDropsOldestBeyondCapacity)
{
    TyphoonParams tp;
    tp.traceCapacity = 8;
    StacheRig rig(2, CoreParams{}, tp);
    Addr a = rig.stache->shmalloc(16 * 4096, 0);
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() != 1)
            co_return;
        for (int p = 0; p < 16; ++p)
            co_await cpu.read<int>(a + p * 4096);
    });
    EXPECT_EQ(rig.mem->trace().size(), 8u);
    // The survivors are the most recent events.
    const Tick lastTick = rig.mem->trace().back().tick;
    EXPECT_GT(lastTick, rig.mem->trace().front().tick);
    rig.mem->clearTrace();
    EXPECT_TRUE(rig.mem->trace().empty());
}

TEST(TyphoonTrace, BulkPacketsAreTraced)
{
    TyphoonParams tp;
    tp.traceCapacity = 128;
    StacheRig rig(2, CoreParams{}, tp);
    Addr src = rig.stache->shmalloc(4096, 0);
    Addr dst = rig.stache->shmalloc(4096, 1);
    rig.mem->tempest(0).setupCtx().bulkTransfer(src, 1, dst, 256, 0);
    rig.run([&](Cpu& cpu) -> Task<void> {
        co_await cpu.compute(10000);
    });
    int bulk = 0;
    for (const TE& e : rig.mem->trace())
        bulk += e.kind == TE::Kind::BulkPacket;
    EXPECT_EQ(bulk, 4); // 256 bytes / 64-byte chunks
}

} // namespace
} // namespace tt
