/**
 * @file
 * Tests of Typhoon's Tempest mechanisms in isolation: Table 1 tag
 * operations, active messages, the NP dispatch loop, VM management,
 * and bulk transfers — using a minimal hand-rolled protocol rather
 * than Stache.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/addr.hh"
#include "tests/helpers.hh"

namespace tt
{
namespace
{

/** Trivial single-node-backed protocol for mechanism tests. */
class FlatProto : public ShmProtocol
{
  public:
    FlatProto(TyphoonMemSystem& ms, std::uint32_t page_size)
        : _ms(ms), _ps(page_size)
    {
        ms.setProtocol(this);
    }

    /** Map every allocated page on every node (replicated, RW). */
    Addr
    shmalloc(std::size_t bytes, NodeId home) override
    {
        (void)home;
        const std::size_t npages = (bytes + _ps - 1) / _ps;
        const Addr base = _next;
        for (std::size_t i = 0; i < npages; ++i) {
            const Addr va = base + i * _ps;
            for (NodeId n = 0; n < _nodes; ++n) {
                TempestCtx& ctx = _ms.tempest(n).setupCtx();
                ctx.mapPage(va, ctx.allocPhysPage(), /*mode=*/0);
                ctx.setPageTags(va, AccessTag::ReadWrite);
            }
        }
        _next = base + npages * _ps;
        return base;
    }

    void setNodes(int n) { _nodes = n; }
    NodeId homeOf(Addr) const override { return 0; }

    void
    peek(Addr va, void* buf, std::size_t len) override
    {
        _ms.physOf(0).read(_ms.pageTableOf(0).translate(va), buf, len);
    }

    void
    poke(Addr va, const void* buf, std::size_t len) override
    {
        for (NodeId n = 0; n < _nodes; ++n)
            _ms.physOf(n).write(_ms.pageTableOf(n).translate(va), buf,
                                len);
    }

    std::string protocolName() const override { return "flat"; }

  private:
    TyphoonMemSystem& _ms;
    std::uint32_t _ps;
    Addr _next = 0x6000'0000;
    int _nodes = 0;
};

struct TyphoonRig
{
    CoreParams cp;
    std::unique_ptr<Machine> machine;
    std::unique_ptr<Network> net;
    std::unique_ptr<TyphoonMemSystem> mem;
    std::unique_ptr<FlatProto> proto;

    explicit TyphoonRig(int nodes)
    {
        cp.nodes = nodes;
        machine = std::make_unique<Machine>(cp);
        net = std::make_unique<Network>(machine->eq(), nodes,
                                        NetworkParams{}, machine->stats());
        mem =
            std::make_unique<TyphoonMemSystem>(*machine, *net,
                                               TyphoonParams{});
        proto = std::make_unique<FlatProto>(*mem, cp.pageSize);
        proto->setNodes(nodes);
        machine->setMemSystem(mem.get());
    }

    RunResult
    run(test::FnApp::Body body)
    {
        test::FnApp app(std::move(body));
        return machine->run(app);
    }
};

TEST(Typhoon, Table1TagOperations)
{
    TyphoonRig rig(1);
    Addr a = rig.proto->shmalloc(4096, 0);
    TempestCtx& ctx = rig.mem->tempest(0).setupCtx();

    // set-RW / set-RO / invalidate / read-tag.
    EXPECT_EQ(ctx.readTag(a), AccessTag::ReadWrite);
    ctx.setRO(a);
    EXPECT_EQ(ctx.readTag(a), AccessTag::ReadOnly);
    ctx.setBusy(a);
    EXPECT_EQ(ctx.readTag(a), AccessTag::Busy);
    ctx.invalidate(a);
    EXPECT_EQ(ctx.readTag(a), AccessTag::Invalid);
    // Tags are per-block: the neighbour block is untouched.
    EXPECT_EQ(ctx.readTag(a + 32), AccessTag::ReadWrite);
    ctx.setRW(a);
    EXPECT_EQ(ctx.readTag(a), AccessTag::ReadWrite);

    // force-read / force-write bypass the tag check even on Invalid.
    ctx.invalidate(a);
    const std::uint64_t v = 0xDEAD'BEEF'1234'5678ULL;
    ctx.forceWrite(a, &v, sizeof(v));
    std::uint64_t out = 0;
    ctx.forceRead(a, &out, sizeof(out));
    EXPECT_EQ(out, v);
}

TEST(Typhoon, ReadFaultOnInvalidBlockSuspendsUntilResume)
{
    TyphoonRig rig(1);
    Addr a = rig.proto->shmalloc(4096, 0);
    TempestCtx& setup = rig.mem->tempest(0).setupCtx();
    setup.invalidate(a);

    // Register a fault handler that flips the tag and resumes.
    int faults = 0;
    rig.mem->tempest(0).registerFaultHandler(
        0, MemOp::Read,
        [&](TempestCtx& ctx, const BlockFault& f) {
            ++faults;
            EXPECT_EQ(f.tag, AccessTag::Invalid);
            ctx.charge(5);
            ctx.setRW(f.va);
            ctx.resume();
        });

    rig.run([&](Cpu& cpu) -> Task<void> {
        int v = co_await cpu.read<int>(a);
        EXPECT_EQ(v, 0);
        // The fault path costs far more than a plain local miss.
        EXPECT_GT(cpu.localTime(), 60u);
    });
    EXPECT_EQ(faults, 1);
    EXPECT_EQ(rig.machine->stats().get("typhoon.block_faults"), 1u);
}

TEST(Typhoon, WriteToReadOnlyBlockFaults)
{
    TyphoonRig rig(1);
    Addr a = rig.proto->shmalloc(4096, 0);
    rig.mem->tempest(0).setupCtx().setRO(a);
    int faults = 0;
    rig.mem->tempest(0).registerFaultHandler(
        0, MemOp::Write,
        [&](TempestCtx& ctx, const BlockFault& f) {
            ++faults;
            EXPECT_EQ(f.tag, AccessTag::ReadOnly);
            ctx.setRW(f.va);
            ctx.resume();
        });
    rig.run([&](Cpu& cpu) -> Task<void> {
        co_await cpu.read<int>(a); // reads are fine on ReadOnly
        co_await cpu.write<int>(a, 5); // write faults
        int v = co_await cpu.read<int>(a);
        EXPECT_EQ(v, 5);
    });
    EXPECT_EQ(faults, 1);
}

TEST(Typhoon, ActiveMessagePingPong)
{
    TyphoonRig rig(2);
    constexpr HandlerId kPing = 0x500, kPong = 0x501;
    int pings = 0, pongs = 0;
    rig.mem->tempest(1).registerMsgHandler(
        kPing, [&](TempestCtx& ctx, const Message& m) {
            ++pings;
            ctx.charge(3);
            Word args[1] = {m.args[0] + 1};
            ctx.send(m.src, kPong, std::span<const Word>(args),
                     nullptr, 0, VNet::Response);
        });
    rig.mem->tempest(0).registerMsgHandler(
        kPong, [&](TempestCtx& ctx, const Message& m) {
            ++pongs;
            ctx.charge(1);
            EXPECT_EQ(m.args[0], 42u);
        });
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 0)
            rig.mem->cpuSend(cpu, 1, kPing, {41});
        co_await cpu.compute(2000); // let messages drain in sim time
    });
    EXPECT_EQ(pings, 1);
    EXPECT_EQ(pongs, 1);
    EXPECT_TRUE(rig.mem->quiescent());
}

TEST(Typhoon, MessageHandlersRunToCompletionInPriorityOrder)
{
    TyphoonRig rig(2);
    constexpr HandlerId kReq = 0x600, kResp = 0x601;
    std::vector<int> order;
    rig.mem->tempest(1).registerMsgHandler(
        kReq, [&](TempestCtx& ctx, const Message&) {
            order.push_back(0);
            ctx.charge(50);
        });
    rig.mem->tempest(1).registerMsgHandler(
        kResp, [&](TempestCtx& ctx, const Message&) {
            order.push_back(1);
            ctx.charge(50);
        });
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 0) {
            // Both arrive while the NP is busy with the first; the
            // response-net message must be dispatched first.
            rig.mem->cpuSend(cpu, 1, kReq, {});
            rig.mem->cpuSend(cpu, 1, kReq, {});
            Message m; // responses via a handler-context send
            (void)m;
            rig.mem->cpuSend(cpu, 1, kReq, {});
        }
        co_await cpu.compute(3000);
    });
    ASSERT_EQ(order.size(), 3u);
    // All requests here (cpuSend uses the request net), so FIFO.
    EXPECT_EQ(order, (std::vector<int>{0, 0, 0}));
}

TEST(Typhoon, ResponseNetworkHasDispatchPriority)
{
    TyphoonRig rig(3);
    constexpr HandlerId kSlow = 0x700, kReq = 0x701, kResp = 0x702;
    std::vector<HandlerId> order;
    for (HandlerId h : {kSlow, kReq, kResp}) {
        rig.mem->tempest(2).registerMsgHandler(
            h, [&order, h](TempestCtx& ctx, const Message&) {
                order.push_back(h);
                ctx.charge(h == 0x700 ? 200 : 5);
            });
    }
    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 0) {
            rig.mem->cpuSend(cpu, 2, kSlow, {}); // occupies the NP
            rig.mem->cpuSend(cpu, 2, kReq, {});  // request net
        }
        if (cpu.id() == 1) {
            // Yield past the quantum so the send is issued at event
            // time ~100, while the NP at node 2 is busy with kSlow.
            co_await cpu.compute(100);
            TempestCtx& ctx = rig.mem->tempest(1).setupCtx();
            ctx.send(2, kResp, {}, nullptr, 0, VNet::Response);
        }
        co_await cpu.compute(3000);
    });
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], kSlow);
    EXPECT_EQ(order[1], kResp) << "response must beat queued request";
    EXPECT_EQ(order[2], kReq);
}

TEST(Typhoon, BulkTransferMovesDataAndSignalsCompletion)
{
    TyphoonRig rig(2);
    Addr src = rig.proto->shmalloc(4096, 0);
    Addr dst = rig.proto->shmalloc(4096, 0);
    // Distinct per-node backing: write the source image on node 0.
    std::vector<std::uint8_t> image(512);
    for (std::size_t i = 0; i < image.size(); ++i)
        image[i] = static_cast<std::uint8_t>(i * 7);
    rig.mem->physOf(0).write(rig.mem->pageTableOf(0).translate(src),
                             image.data(), image.size());

    constexpr HandlerId kDone = 0x800;
    bool done = false;
    rig.mem->tempest(1).registerMsgHandler(
        kDone, [&](TempestCtx& ctx, const Message&) {
            ctx.charge(2);
            done = true;
        });

    rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 0) {
            TempestCtx& ctx = rig.mem->tempest(0).setupCtx();
            ctx.bulkTransfer(src, 1, dst, 512, kDone);
        }
        co_await cpu.compute(5000);
    });
    EXPECT_TRUE(done);
    // 512 bytes / 64-byte chunks = 8 packets.
    EXPECT_EQ(rig.machine->stats().get("np.bulk_packets"), 8u);
    std::vector<std::uint8_t> out(512);
    rig.mem->physOf(1).read(rig.mem->pageTableOf(1).translate(dst),
                            out.data(), out.size());
    EXPECT_EQ(out, image);
}

TEST(Typhoon, VmManagementMapsUnmapsRemaps)
{
    TyphoonRig rig(1);
    TempestCtx& ctx = rig.mem->tempest(0).setupCtx();
    const Addr va1 = 0x9000'0000, va2 = 0x9100'0000;
    const PAddr pa = ctx.allocPhysPage();
    ctx.mapPage(va1, pa, 3);
    EXPECT_TRUE(ctx.pageMapped(va1));
    EXPECT_EQ(rig.mem->pageTableOf(0).lookup(va1)->mode, 3);
    EXPECT_EQ(ctx.readTag(va1), AccessTag::Invalid) << "fresh = Invalid";

    ctx.setRW(va1);
    std::uint32_t v = 99;
    ctx.forceWrite(va1 + 8, &v, 4);

    ctx.remapPage(va1, va2, 4);
    EXPECT_FALSE(ctx.pageMapped(va1));
    EXPECT_TRUE(ctx.pageMapped(va2));
    // Same frame: the data survives the remap; tags reset.
    std::uint32_t out = 0;
    ctx.forceRead(va2 + 8, &out, 4);
    EXPECT_EQ(out, 99u);
    EXPECT_EQ(ctx.readTag(va2), AccessTag::Invalid);

    ctx.unmapPage(va2);
    EXPECT_FALSE(ctx.pageMapped(va2));
    ctx.freePhysPage(pa);
}

TEST(Typhoon, PageUserWordRoundTrip)
{
    TyphoonRig rig(1);
    Addr a = rig.proto->shmalloc(4096, 0);
    TempestCtx& ctx = rig.mem->tempest(0).setupCtx();
    ctx.setPageUserWord(a, 0xABCD'0001'2345ULL);
    EXPECT_EQ(ctx.pageUserWord(a + 100), 0xABCD'0001'2345ULL);
}

TEST(Typhoon, InvalidatePurgesCpuCachedCopy)
{
    TyphoonRig rig(1);
    Addr a = rig.proto->shmalloc(4096, 0);
    rig.run([&](Cpu& cpu) -> Task<void> {
        co_await cpu.read<int>(a); // cache the block
        EXPECT_TRUE(rig.mem->cpuCacheOf(0).present(a));
        TempestCtx& ctx = rig.mem->tempest(0).setupCtx();
        ctx.invalidate(a);
        EXPECT_FALSE(rig.mem->cpuCacheOf(0).present(a));
        // Next read would fault; restore the tag first.
        ctx.setRW(a);
        const Tick t0 = cpu.localTime();
        co_await cpu.read<int>(a);
        EXPECT_GE(cpu.localTime() - t0, 1u + 29) << "refetch from memory";
    });
}

TEST(Typhoon, UnregisteredMessagePanics)
{
    TyphoonRig rig(2);
    test::ExpectLeaksInScope panicAbandonsFrames;
    EXPECT_ANY_THROW(rig.run([&](Cpu& cpu) -> Task<void> {
        if (cpu.id() == 0)
            rig.mem->cpuSend(cpu, 1, 0x9999, {});
        co_await cpu.compute(1000);
    }));
}

} // namespace
} // namespace tt
