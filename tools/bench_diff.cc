/**
 * @file
 * bench_diff — the perf-regression gate: compares a fresh
 * bench_simcore report against the committed baseline and fails on
 * throughput or memory-footprint regressions.
 *
 *   bench_diff BASELINE.json FRESH.json [--tol-evsec=F] [--tol-mem=F]
 *
 * Comparison rules:
 *   - the two reports must describe the same experiment (equal
 *     "nodes" and "scale"), otherwise the comparison is refused
 *     (exit 2) instead of producing a meaningless verdict;
 *   - overall events_per_sec must not drop by more than --tol-evsec
 *     (default 0.30 — wall-clock throughput on a shared host is
 *     noisy, so the gate only catches real cliffs; see DESIGN.md
 *     §16 for the tolerance rationale);
 *   - per-case events/sec, matched by (system, app, dataset,
 *     threads), must not drop by more than the same tolerance; a
 *     case present only in the baseline is a failure (coverage
 *     lost), one only in the fresh run is reported informationally;
 *   - per-case simulated cycles and events are deterministic for a
 *     fixed configuration: a mismatch is reported as a warning (the
 *     simulation changed — fine if intended, but never silent);
 *   - mem_footprint entries, matched by (system, nodes), must not
 *     grow total_peak_bytes by more than --tol-mem (default 0.10 —
 *     the probes are deterministic, so the budget is tight);
 *     missing entries follow the per-case presence rules.
 *
 * Exit status: 0 = within tolerance, 1 = regression, 2 = usage/IO/
 * incomparable inputs.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "json_mini.hh"

using jmini::JsonParser;
using jmini::JsonValue;

namespace
{

double
numOr(const JsonValue* obj, const char* key, double fallback)
{
    const JsonValue* v = obj ? obj->find(key) : nullptr;
    return v && v->isNumber() ? v->number : fallback;
}

std::string
strOr(const JsonValue& obj, const char* key)
{
    const JsonValue* v = obj.find(key);
    return v && v->isString() ? v->str : std::string();
}

/** (system, app, dataset, threads) identity of one bench case. */
std::string
caseKey(const JsonValue& c)
{
    std::ostringstream os;
    os << strOr(c, "system") << '/' << strOr(c, "app") << '/'
       << strOr(c, "dataset") << "/t"
       << static_cast<long long>(numOr(&c, "threads", 1));
    return os.str();
}

double
caseEvSec(const JsonValue& c)
{
    const double wall = numOr(&c, "wall_ms", 0);
    return wall > 0 ? numOr(&c, "events", 0) / (wall / 1000.0) : 0;
}

bool
load(const char* path, JsonValue& out)
{
    std::ifstream f(path);
    if (!f) {
        std::fprintf(stderr, "bench_diff: cannot open %s\n", path);
        return false;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    const std::string text = buf.str();
    std::string err;
    if (!JsonParser(text).parse(out, err)) {
        std::fprintf(stderr, "%s: JSON parse error: %s\n", path,
                     err.c_str());
        return false;
    }
    if (!out.isObject()) {
        std::fprintf(stderr, "%s: top level is not an object\n", path);
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    const char* basePath = nullptr;
    const char* freshPath = nullptr;
    double tolEvsec = 0.30;
    double tolMem = 0.10;

    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--tol-evsec=", 12) == 0) {
            tolEvsec = std::atof(argv[i] + 12);
        } else if (std::strncmp(argv[i], "--tol-mem=", 10) == 0) {
            tolMem = std::atof(argv[i] + 10);
        } else if (!basePath) {
            basePath = argv[i];
        } else if (!freshPath) {
            freshPath = argv[i];
        } else {
            std::fprintf(stderr, "bench_diff: unexpected argument %s\n",
                         argv[i]);
            return 2;
        }
    }
    if (!basePath || !freshPath || tolEvsec <= 0 || tolMem <= 0) {
        std::fprintf(stderr,
                     "usage: bench_diff BASELINE.json FRESH.json "
                     "[--tol-evsec=F] [--tol-mem=F]\n");
        return 2;
    }

    JsonValue base, fresh;
    if (!load(basePath, base) || !load(freshPath, fresh))
        return 2;

    if (numOr(&base, "nodes", -1) != numOr(&fresh, "nodes", -2) ||
        numOr(&base, "scale", -1) != numOr(&fresh, "scale", -2)) {
        std::fprintf(stderr,
                     "bench_diff: reports are not comparable "
                     "(nodes %g/%g, scale %g/%g)\n",
                     numOr(&base, "nodes", 0), numOr(&fresh, "nodes", 0),
                     numOr(&base, "scale", 0),
                     numOr(&fresh, "scale", 0));
        return 2;
    }

    int regressions = 0;
    int warnings = 0;

    // Overall throughput.
    const double baseEv = numOr(&base, "events_per_sec", 0);
    const double freshEv = numOr(&fresh, "events_per_sec", 0);
    if (baseEv > 0) {
        const double ratio = freshEv / baseEv;
        std::printf("events_per_sec: %.0f -> %.0f (%.2fx, tolerance "
                    "-%.0f%%)\n",
                    baseEv, freshEv, ratio, tolEvsec * 100);
        if (ratio < 1.0 - tolEvsec) {
            std::fprintf(stderr,
                         "REGRESSION: overall events/sec dropped "
                         "%.0f%% (tolerance %.0f%%)\n",
                         (1.0 - ratio) * 100, tolEvsec * 100);
            ++regressions;
        }
    }

    // Per-case throughput + determinism cross-check.
    const JsonValue* baseCases = base.find("cases");
    const JsonValue* freshCases = fresh.find("cases");
    if (baseCases && baseCases->isArray() && freshCases &&
        freshCases->isArray()) {
        for (const JsonValue& bc : baseCases->items) {
            const std::string key = caseKey(bc);
            const JsonValue* fc = nullptr;
            for (const JsonValue& c : freshCases->items)
                if (caseKey(c) == key) {
                    fc = &c;
                    break;
                }
            if (!fc) {
                std::fprintf(stderr,
                             "REGRESSION: case %s missing from the "
                             "fresh report\n",
                             key.c_str());
                ++regressions;
                continue;
            }
            const double be = caseEvSec(bc), fe = caseEvSec(*fc);
            if (be > 0 && fe / be < 1.0 - tolEvsec) {
                std::fprintf(stderr,
                             "REGRESSION: %s events/sec dropped "
                             "%.0f%% (%.0f -> %.0f)\n",
                             key.c_str(), (1.0 - fe / be) * 100, be,
                             fe);
                ++regressions;
            }
            if (numOr(&bc, "cycles", -1) != numOr(fc, "cycles", -2) ||
                numOr(&bc, "events", -1) != numOr(fc, "events", -2)) {
                std::fprintf(stderr,
                             "warning: %s simulated "
                             "cycles/events changed — the "
                             "simulation itself differs\n",
                             key.c_str());
                ++warnings;
            }
        }
        for (const JsonValue& c : freshCases->items) {
            const std::string key = caseKey(c);
            bool found = false;
            for (const JsonValue& bc : baseCases->items)
                if (caseKey(bc) == key)
                    found = true;
            if (!found)
                std::printf("note: new case %s (no baseline)\n",
                            key.c_str());
        }
    }

    // Memory footprint, matched by (system, nodes). The probes are
    // deterministic for a fixed configuration, so the budget is much
    // tighter than the wall-clock one.
    const JsonValue* baseMem = base.find("mem_footprint");
    const JsonValue* freshMem = fresh.find("mem_footprint");
    const JsonValue* baseEntries =
        baseMem ? baseMem->find("entries") : nullptr;
    const JsonValue* freshEntries =
        freshMem ? freshMem->find("entries") : nullptr;
    if (baseEntries && baseEntries->isArray()) {
        for (const JsonValue& be : baseEntries->items) {
            std::ostringstream os;
            os << strOr(be, "system") << "/n"
               << static_cast<long long>(numOr(&be, "nodes", 0));
            const std::string key = os.str();
            const JsonValue* fe = nullptr;
            if (freshEntries && freshEntries->isArray())
                for (const JsonValue& e : freshEntries->items)
                    if (strOr(e, "system") == strOr(be, "system") &&
                        numOr(&e, "nodes", -1) ==
                            numOr(&be, "nodes", -2)) {
                        fe = &e;
                        break;
                    }
            if (!fe) {
                std::fprintf(stderr,
                             "REGRESSION: mem_footprint entry %s "
                             "missing from the fresh report\n",
                             key.c_str());
                ++regressions;
                continue;
            }
            const double bb = numOr(&be, "total_peak_bytes", 0);
            const double fb = numOr(fe, "total_peak_bytes", 0);
            if (bb > 0 && fb / bb > 1.0 + tolMem) {
                std::fprintf(stderr,
                             "REGRESSION: %s total_peak_bytes grew "
                             "%.0f%% (%.0f -> %.0f, tolerance "
                             "+%.0f%%)\n",
                             key.c_str(), (fb / bb - 1.0) * 100, bb,
                             fb, tolMem * 100);
                ++regressions;
            }
        }
    }

    if (regressions) {
        std::fprintf(stderr, "bench_diff: %d regression(s)\n",
                     regressions);
        return 1;
    }
    std::printf("bench_diff: ok (%d warning(s))\n", warnings);
    return 0;
}
