#!/usr/bin/env bash
# Tier-2 verification gate (see README "Verification tiers").
#
# Runs, in order:
#   1. Debug + ASan/UBSan build of the whole tree, full ctest.
#   2. Release (RelWithDebInfo) build, full ctest.
#   3. clang-tidy over src/ (skipped with a notice when no clang-tidy
#      binary is installed — the container ships only g++).
#   4. A --check --perturb smoke grid: every protocol runs a tiny
#      workload under the coherence sanitizer with randomized
#      schedules; any invariant violation fails the gate (ttsim
#      exits 3 and prints the minimized report). One leg of the grid
#      repeats under the ASan build so the shadow engine itself runs
#      with memory sanitizers on, in both modes (fast + paranoid).
#   4b. A 25-seed fault-campaign grid with the sanitizer enforced
#      (--campaign=25 --check per protocol over a lossy fabric):
#      always-on checking is cheap enough now (DESIGN.md §13) that
#      every campaign run validates the full invariant catalog.
#   5. A --trace smoke grid: every protocol writes a Perfetto trace
#      and a JSON stats dump; both must parse as JSON
#      (python3 -m json.tool), every delivered message id must
#      pair with a sent id, and tools/trace_lint must accept every
#      exported trace (schema, span balance, flow well-formedness).
#   6. A --faults smoke grid: a small fault campaign per protocol over
#      a lossy fabric (drop+dup+reorder) with the sanitizer on must
#      come back all-ok with real faults injected and repaired, and
#      the --no-reliable negative control must fail — proving both
#      that the transport works and that the injection has teeth.
#   7. An --analyze smoke: the sharing analyzer must classify the
#      canonical workloads correctly (mp3d migratory, em3d
#      producer-consumer), its JSON must parse, a rerun must be
#      byte-identical, and an analyze-off run must be bit-identical
#      to the analyzer-on run's simulated results (zero probe effect).
#   7b. A --trace-critical smoke: every protocol traces coherence
#      transactions and prints the critical-path report (the
#      partition identity is asserted inside the tracer); the em3d
#      golden pins the per-pattern latency breakdown to
#      producer-consumer; a faulted txn trace must pass trace_lint
#      with every retransmit tied to a transaction flow.
#   8. A TSan (RelWithDebInfo, TT_SANITIZE=thread) build of the
#      parallel engine's tests plus a small --threads=4 grid: every
#      protocol runs under ThreadSanitizer with the sharded engine
#      attached (DESIGN.md §12).
#   9. A crash-recovery + checkpoint/restart smoke (DESIGN.md §15):
#      every protocol survives a mid-run crash-stop node failure with
#      the sanitizer on and reproduces the crash-free checksum; a
#      checkpointing run and its restored continuation must produce
#      byte-identical stats JSON per protocol; and a sharded crash
#      campaign's shard union must equal the unsharded report.
#   10. A --telemetry smoke grid (DESIGN.md §16): every protocol
#      reports per-subsystem memory + host-time attribution,
#      stats_lint validates the reports, and telemetry-off runs are
#      byte-identical to telemetry-on (zero probe effect); then the
#      bench_diff perf gate: the committed BENCH_simcore.json passes
#      against itself, a synthetically slowed copy fails, and a fresh
#      reduced-grid measurement stays within tolerance.
#
# Usage: tools/check.sh [--skip-asan] [--skip-tidy] [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_ASAN=0
SKIP_TIDY=0
SKIP_TSAN=0
for arg in "$@"; do
    case "$arg" in
        --skip-asan) SKIP_ASAN=1 ;;
        --skip-tidy) SKIP_TIDY=1 ;;
        --skip-tsan) SKIP_TSAN=1 ;;
        *) echo "unknown option: $arg" >&2; exit 2 ;;
    esac
done

JOBS=$(nproc 2>/dev/null || echo 2)

step() { printf '\n=== %s ===\n' "$*"; }

# Fail fast, with a message naming the fix, when a build directory was
# last configured with cache settings that contradict the preset about
# to use it. CMake reuses an existing cache as-is, so a mismatched
# tree (say build/ configured by hand with TT_SANITIZE=thread) would
# otherwise "pass" the wrong gate or die in confusing link errors.
# An absent entry is fine — the upcoming configure will set it.
expect_cache() { # expect_cache <dir> <var> <want>
    local dir="$1" var="$2" want="$3" cache got
    cache="$dir/CMakeCache.txt"
    [ -f "$cache" ] || return 0
    got=$(sed -n "s/^$var:[A-Za-z]*=//p" "$cache" | head -n 1)
    if [ -n "$got" ] && [ "$got" != "$want" ]; then
        echo "check.sh: $dir was configured with $var=$got," \
             "but this step needs $var=$want." >&2
        echo "check.sh: remove $dir/ (or re-run 'cmake --preset'" \
             "for it) and retry." >&2
        exit 2
    fi
}

# --- 1. Debug + ASan/UBSan ------------------------------------------------
if [ "$SKIP_ASAN" = 0 ]; then
    step "Debug + ASan/UBSan build"
    expect_cache build-asan CMAKE_BUILD_TYPE Debug
    expect_cache build-asan TT_SANITIZE ON
    cmake --preset asan >/dev/null
    cmake --build --preset asan -j "$JOBS"
    step "ctest (asan)"
    ctest --preset asan -j "$JOBS"
else
    step "ASan build skipped (--skip-asan)"
fi

# --- 2. Release ------------------------------------------------------------
step "Release build"
expect_cache build CMAKE_BUILD_TYPE RelWithDebInfo
expect_cache build TT_SANITIZE OFF
cmake --preset release >/dev/null
cmake --build --preset release -j "$JOBS"
step "ctest (release)"
ctest --preset release -j "$JOBS"

# --- 3. clang-tidy ----------------------------------------------------------
if [ "$SKIP_TIDY" = 0 ] && command -v clang-tidy >/dev/null 2>&1; then
    step "clang-tidy over src/"
    # The release tree has the compile database.
    cmake --preset release -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    find src -name '*.cc' -print0 |
        xargs -0 -n 4 -P "$JOBS" clang-tidy -p build --quiet
elif [ "$SKIP_TIDY" = 0 ]; then
    step "clang-tidy not installed; skipping (config: .clang-tidy)"
else
    step "clang-tidy skipped (--skip-tidy)"
fi

# --- 4. Coherence-sanitizer smoke grid --------------------------------------
step "coherence sanitizer: --check --perturb smoke grid"
TTSIM=build/tools/ttsim
for sys in dirnnb stache migratory update; do
    app=em3d
    [ "$sys" = dirnnb ] && app=mp3d
    [ "$sys" = stache ] && app=ocean
    for seed in 1 42; do
        echo "--- $sys/$app --perturb=$seed"
        "$TTSIM" --system="$sys" --app="$app" --dataset=tiny \
            --nodes=8 --check --perturb="$seed" >/dev/null
    done
done
# The shadow engine under ASan/UBSan: the fast path's packed words
# and CoW leaves, and the paranoid oracle's byte loops, both with
# randomized schedules.
if [ "$SKIP_ASAN" = 0 ]; then
    for mode in fast paranoid; do
        echo "--- stache/em3d --check=$mode --perturb=1 (asan)"
        build-asan/tools/ttsim --system=stache --app=em3d \
            --dataset=tiny --nodes=8 --check="$mode" --perturb=1 \
            >/dev/null
    done
fi

# --- 4b. Fault campaigns with the sanitizer enforced ------------------------
step "coherence sanitizer: --campaign=25 --check fault grid"
CHECKMIX='drop=0.02,dup=0.02,reorder=0.05,seed=11'
for sys in dirnnb stache migratory update; do
    echo "--- $sys/em3d --campaign=25 --check"
    "$TTSIM" --app=em3d --dataset=tiny --nodes=8 --scale=2 \
        --faults="$CHECKMIX" --campaign=25 --check \
        --systems="$sys" >/dev/null
done
# --- 5. Flight-recorder smoke grid ------------------------------------------
step "flight recorder: --trace smoke grid"
TRACEDIR=$(mktemp -d)
trap 'rm -rf "$TRACEDIR"' EXIT
for sys in dirnnb stache migratory update; do
    echo "--- $sys/em3d --trace"
    "$TTSIM" --system="$sys" --app=em3d --dataset=tiny --nodes=8 \
        --scale=4 --trace="$TRACEDIR/$sys.json" \
        --stats-json="$TRACEDIR/$sys.stats.json" >/dev/null
    python3 -m json.tool "$TRACEDIR/$sys.json" >/dev/null
    python3 -m json.tool "$TRACEDIR/$sys.stats.json" >/dev/null
    python3 - "$TRACEDIR/$sys.json" <<'EOF'
import json, sys
ev = json.load(open(sys.argv[1]))["traceEvents"]
sends = {e["args"]["msg"] for e in ev
         if e.get("ph") == "X" and "src" in e.get("args", {})}
delivers = {e["args"]["msg"] for e in ev
            if e.get("ph") == "i" and "msg" in e.get("args", {})}
assert sends, "trace has no message sends"
assert delivers == sends, (
    f"unpaired causal ids: {len(delivers ^ sends)}")
EOF
done
# The standalone validator over the whole smoke grid's exports.
TRACE_LINT=build/tools/trace_lint
"$TRACE_LINT" "$TRACEDIR"/dirnnb.json "$TRACEDIR"/stache.json \
    "$TRACEDIR"/migratory.json "$TRACEDIR"/update.json

# --- 6. Fault-injection smoke grid ------------------------------------------
step "fault campaign: --faults --campaign smoke grid"
FAULTMIX='drop=0.02,dup=0.02,reorder=0.05,seed=1'
"$TTSIM" --app=em3d --dataset=tiny --nodes=8 --scale=2 \
    --faults="$FAULTMIX" --campaign=2 \
    --campaign-json="$TRACEDIR/campaign.json" >/dev/null
python3 - "$TRACEDIR/campaign.json" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
t = rep["totals"]
assert t["ok"] == t["runs"], f"campaign not clean: {t}"
assert t["faults_injected"] > 0, "fabric was not actually lossy"
assert t["retransmits"] > 0, "transport never had to repair anything"
EOF
echo "--- campaign clean: report validated"
# Negative control: the same fabric without the reliable transport
# must NOT come back clean (watchdog trip / deadlock / violation →
# ttsim exits 3 or 4; anything else, including 0, fails the gate).
rc=0
"$TTSIM" --app=em3d --dataset=tiny --nodes=8 --scale=2 \
    --faults="$FAULTMIX" --no-reliable --horizon=20000 \
    --campaign=1 --systems=stache >/dev/null 2>&1 || rc=$?
if [ "$rc" != 3 ] && [ "$rc" != 4 ]; then
    echo "negative control: expected exit 3/4, got $rc" >&2
    exit 1
fi
echo "--- negative control failed as required (exit $rc)"

# --- 7. Sharing-analyzer smoke ----------------------------------------------
step "sharing analyzer: --analyze smoke"
echo "--- migratory/mp3d --analyze"
"$TTSIM" --system=migratory --app=mp3d --dataset=tiny --nodes=8 \
    --analyze="$TRACEDIR/mp3d.analyze.json" \
    > "$TRACEDIR/mp3d.analyze.txt"
grep -q "dominant sharing pattern: migratory" "$TRACEDIR/mp3d.analyze.txt"
echo "--- stache/em3d --analyze"
"$TTSIM" --system=stache --app=em3d --dataset=tiny --nodes=8 \
    --analyze="$TRACEDIR/em3d.analyze.json" \
    > "$TRACEDIR/em3d.analyze.txt"
grep -q "dominant sharing pattern: producer-consumer" \
    "$TRACEDIR/em3d.analyze.txt"
python3 -m json.tool "$TRACEDIR/mp3d.analyze.json" >/dev/null
python3 -m json.tool "$TRACEDIR/em3d.analyze.json" >/dev/null
# Rerun byte-identity: the analyzer is deterministic end to end
# (same command again, stdout and JSON must match byte for byte).
cp "$TRACEDIR/em3d.analyze.json" "$TRACEDIR/em3d.analyze.json.first"
"$TTSIM" --system=stache --app=em3d --dataset=tiny --nodes=8 \
    --analyze="$TRACEDIR/em3d.analyze.json" \
    > "$TRACEDIR/em3d.analyze2.txt"
diff "$TRACEDIR/em3d.analyze.txt" "$TRACEDIR/em3d.analyze2.txt"
diff "$TRACEDIR/em3d.analyze.json.first" "$TRACEDIR/em3d.analyze.json"
# Zero probe effect: the simulated results (execution time, checksum,
# stats) of an analyze-off run must be bit-identical to analyze-on.
"$TTSIM" --system=stache --app=em3d --dataset=tiny --nodes=8 \
    > "$TRACEDIR/em3d.plain.txt"
grep -E 'execution time|checksum' "$TRACEDIR/em3d.plain.txt" \
    > "$TRACEDIR/em3d.plain.key"
grep -E 'execution time|checksum' "$TRACEDIR/em3d.analyze.txt" \
    > "$TRACEDIR/em3d.analyze.key"
diff "$TRACEDIR/em3d.plain.key" "$TRACEDIR/em3d.analyze.key"
echo "--- analyzer deterministic, classification correct, no probe effect"

# --- 7b. Transaction tracer smoke -------------------------------------------
step "transaction tracer: --trace-critical smoke"
for sys in dirnnb stache migratory update; do
    echo "--- $sys/em3d --trace-critical"
    "$TTSIM" --system="$sys" --app=em3d --dataset=tiny --nodes=8 \
        --scale=4 --trace-critical="$TRACEDIR/$sys.txn.json" \
        > "$TRACEDIR/$sys.txn.txt"
    grep -q "coherence-transaction critical path" "$TRACEDIR/$sys.txn.txt"
    python3 -m json.tool "$TRACEDIR/$sys.txn.json" >/dev/null
done
# Golden per-pattern latency breakdown on em3d: wall time concentrates
# in the producer-consumer class the workload was built around.
"$TTSIM" --system=stache --app=em3d --dataset=tiny --nodes=8 \
    --trace-critical > "$TRACEDIR/em3d.txn.txt"
grep -q "dominant pattern by wall time: producer-consumer" \
    "$TRACEDIR/em3d.txn.txt"
grep -q "producer-consumer: .* txns" "$TRACEDIR/em3d.txn.txt"
# Composition with --faults and --trace: retransmit spans stay tied
# to their transaction, and the flow graph passes the linter.
"$TTSIM" --system=stache --app=em3d --dataset=tiny --nodes=8 \
    --scale=2 --faults='drop=0.02,dup=0.02,reorder=0.05,seed=7' \
    --trace-critical --trace="$TRACEDIR/txn.faults.json" \
    > "$TRACEDIR/txn.faults.txt"
grep -qE "transactions: .* [1-9][0-9]* retransmit-affected" \
    "$TRACEDIR/txn.faults.txt"
"$TRACE_LINT" "$TRACEDIR/txn.faults.json"
echo "--- transaction tracer: all four systems, golden + faults OK"

# --- 8. ThreadSanitizer: parallel engine ------------------------------------
if [ "$SKIP_TSAN" = 0 ]; then
    step "ThreadSanitizer: parallel engine (--threads=4)"
    expect_cache build-tsan CMAKE_BUILD_TYPE RelWithDebInfo
    expect_cache build-tsan TT_SANITIZE thread
    cmake --preset tsan >/dev/null
    cmake --build --preset tsan -j "$JOBS" \
        --target ttsim test_sim test_config
    export TSAN_OPTIONS=halt_on_error=1
    build-tsan/tests/test_sim \
        --gtest_filter='Spsc*:ParallelEngine*'
    build-tsan/tests/test_config \
        --gtest_filter='ThreadsIdentity.ActorWorkload*'
    for sys in dirnnb stache migratory update; do
        echo "--- $sys/em3d --threads=4 (tsan)"
        build-tsan/tools/ttsim --system="$sys" --app=em3d \
            --dataset=tiny --nodes=8 --threads=4 >/dev/null
    done
    unset TSAN_OPTIONS
else
    step "TSan gate skipped (--skip-tsan)"
fi

# --- 9. Crash recovery + checkpoint/restart ---------------------------------
step "crash recovery: crash@ --check smoke grid"
for sys in dirnnb stache migratory update; do
    echo "--- $sys/em3d crash@30000:3 --check"
    "$TTSIM" --system="$sys" --app=em3d --dataset=tiny --nodes=8 \
        --faults='crash@30000:3,seed=5' --check=fast \
        > "$TRACEDIR/$sys.crash.txt"
    grep -q "1 crash(es) injected, 1 recovery(ies) completed" \
        "$TRACEDIR/$sys.crash.txt"
    # The recovered run recomputes the crash-free result exactly.
    "$TTSIM" --system="$sys" --app=em3d --dataset=tiny --nodes=8 \
        --check=fast > "$TRACEDIR/$sys.nocrash.txt"
    grep 'checksum' "$TRACEDIR/$sys.crash.txt" > "$TRACEDIR/$sys.crash.key"
    grep 'checksum' "$TRACEDIR/$sys.nocrash.txt" > "$TRACEDIR/$sys.nocrash.key"
    diff "$TRACEDIR/$sys.crash.key" "$TRACEDIR/$sys.nocrash.key"
done
echo "--- all four systems recover to the crash-free checksum"

step "checkpoint/restart: byte-identity grid"
for sys in dirnnb stache migratory update; do
    echo "--- $sys/em3d --checkpoint=2 / --restore"
    "$TTSIM" --system="$sys" --app=em3d --dataset=tiny --nodes=8 \
        --check --checkpoint=2,"$TRACEDIR/$sys.ckpt" \
        --stats-json="$TRACEDIR/$sys.ckpt.a.json" >/dev/null
    "$TTSIM" --system="$sys" --app=em3d --dataset=tiny --nodes=8 \
        --check --restore="$TRACEDIR/$sys.ckpt" \
        --stats-json="$TRACEDIR/$sys.ckpt.b.json" >/dev/null
    diff "$TRACEDIR/$sys.ckpt.a.json" "$TRACEDIR/$sys.ckpt.b.json"
done
echo "--- checkpoint/restore stats byte-identical on all four systems"

step "crash campaign: shard union identity"
CRASHMIX='drop=0.005,crash@30000:3,seed=5'
"$TTSIM" --app=em3d --dataset=tiny --nodes=8 --scale=4 \
    --faults="$CRASHMIX" --campaign=4 --systems=stache \
    --campaign-json="$TRACEDIR/camp.whole.json" >/dev/null
for shard in 0 1; do
    "$TTSIM" --app=em3d --dataset=tiny --nodes=8 --scale=4 \
        --faults="$CRASHMIX" --campaign=4 --systems=stache \
        --campaign-shard=$shard/2 \
        --campaign-json="$TRACEDIR/camp.s$shard.json" >/dev/null
done
python3 - "$TRACEDIR" <<'EOF'
import json, sys
d = sys.argv[1]
whole = json.load(open(f"{d}/camp.whole.json"))
merged = []
for s in (0, 1):
    rep = json.load(open(f"{d}/camp.s{s}.json"))
    assert rep["shard"] == {"index": s, "count": 2}, rep["shard"]
    merged += rep["runs"]
merged.sort(key=lambda r: r["index"])
key = lambda r: {k: r[k] for k in
                 ("index", "system", "seed", "outcome", "cycles")}
assert [key(r) for r in merged] == [key(r) for r in whole["runs"]], \
    "shard union != unsharded campaign"
rec = whole["recovery"]
assert rec["crashes_injected"] == 4 and rec["crashes_survived"] == 4, rec
EOF
echo "--- shard union equals unsharded; 4/4 crashes survived"

# --- 10. Self-telemetry + perf-regression gate ------------------------------
step "telemetry: --telemetry smoke grid"
STATS_LINT=build/tools/stats_lint
for sys in dirnnb stache migratory update; do
    echo "--- $sys/em3d --telemetry"
    "$TTSIM" --system="$sys" --app=em3d --dataset=tiny --nodes=8 \
        --scale=4 --telemetry="$TRACEDIR/$sys.telem.json" \
        --stats-json="$TRACEDIR/$sys.telem.stats.json" \
        > "$TRACEDIR/$sys.telem.txt"
    "$STATS_LINT" --telemetry "$TRACEDIR/$sys.telem.json" \
        --stats "$TRACEDIR/$sys.telem.stats.json"
    # Zero probe effect: the simulated results of a telemetry-off run
    # must be byte-identical to telemetry-on (host-time lines are
    # telemetry output, not simulated results — the anchored patterns
    # pick out exactly the simulated half of the summary).
    "$TTSIM" --system="$sys" --app=em3d --dataset=tiny --nodes=8 \
        --scale=4 > "$TRACEDIR/$sys.notelem.txt"
    grep -E '^(execution time|checksum|work units|net messages|events )' \
        "$TRACEDIR/$sys.telem.txt" > "$TRACEDIR/$sys.telem.key"
    grep -E '^(execution time|checksum|work units|net messages|events )' \
        "$TRACEDIR/$sys.notelem.txt" > "$TRACEDIR/$sys.notelem.key"
    diff "$TRACEDIR/$sys.telem.key" "$TRACEDIR/$sys.notelem.key"
done
# Telemetry composes with the parallel engine: the report gains the
# per-lane utilization section, and its counters are consistent.
"$TTSIM" --system=stache --app=em3d --dataset=tiny --nodes=8 \
    --scale=4 --threads=4 \
    --telemetry="$TRACEDIR/threads.telem.json" >/dev/null
"$STATS_LINT" --telemetry "$TRACEDIR/threads.telem.json"
python3 - "$TRACEDIR/threads.telem.json" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
assert "engine" in rep, "no engine section under --threads"
assert rep["engine"]["threads"] == 4, rep["engine"]
assert sum(rep["engine"]["lane_executed"]) == rep["engine"]["lane_events"]
assert rep["host"]["attributed_pct"] is None or \
    0 <= rep["host"]["attributed_pct"] <= 100.5
EOF
echo "--- telemetry: four systems clean, no probe effect, engine section OK"

step "perf gate: bench_diff"
BENCH_DIFF=build/tools/bench_diff
# The committed baseline can never regress against itself.
"$BENCH_DIFF" BENCH_simcore.json BENCH_simcore.json >/dev/null
# Teeth: a synthetically slowed copy must fail the gate.
python3 - BENCH_simcore.json "$TRACEDIR/bench.regressed.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
d["events_per_sec"] *= 0.5
for c in d["cases"]:
    c["wall_ms"] *= 2
json.dump(d, open(sys.argv[2], "w"))
EOF
rc=0
"$BENCH_DIFF" BENCH_simcore.json "$TRACEDIR/bench.regressed.json" \
    >/dev/null 2>&1 || rc=$?
if [ "$rc" != 1 ]; then
    echo "bench_diff: expected exit 1 on synthetic regression, got $rc" >&2
    exit 1
fi
# A fresh reduced-grid measurement (em3d only, smallest footprint
# point) against the committed baseline filtered to the same subset.
# Generous tolerances absorb host noise: this is a cliff detector,
# not a microbenchmark (DESIGN.md §16).
python3 - BENCH_simcore.json "$TRACEDIR/bench.baseline.reduced.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
d["cases"] = [c for c in d["cases"] if c["app"] == "em3d"]
ev = sum(c["events"] for c in d["cases"])
wall = sum(c["wall_ms"] for c in d["cases"])
d["total_events"], d["total_wall_ms"] = ev, wall
d["events_per_sec"] = ev / (wall / 1000.0)
if "mem_footprint" in d:
    d["mem_footprint"]["entries"] = [
        e for e in d["mem_footprint"]["entries"] if e["nodes"] == 32]
json.dump(d, open(sys.argv[2], "w"))
EOF
# The strict 1.05x telemetry bound is enforced by the full-grid run
# that produces BENCH_simcore.json; this short reduced run measures
# overhead over tiny wall intervals on a loaded CI host, so it gets
# the same loosening as the bench_diff tolerances below.
TT_APPS=em3d TT_FOOTPRINT_NODES=32 TT_THREADS=2 \
    TT_TELEMETRY_BOUND=1.5 \
    TT_BENCH_JSON="$TRACEDIR/bench.fresh.json" \
    build/bench/bench_simcore > "$TRACEDIR/bench.fresh.txt"
"$BENCH_DIFF" "$TRACEDIR/bench.baseline.reduced.json" \
    "$TRACEDIR/bench.fresh.json" --tol-evsec=0.5 --tol-mem=0.25
echo "--- perf gate: self-check, synthetic teeth, fresh reduced grid OK"

echo
echo "check.sh: all gates passed"
