/**
 * @file
 * A minimal recursive-descent JSON parser shared by the standalone
 * validation tools (stats_lint, bench_diff): just enough to read the
 * simulator's own JSON output without external dependencies.
 * Numbers are doubles; `null` is a first-class kind because the
 * stats exporter emits it for non-finite values.
 */

#ifndef TT_TOOLS_JSON_MINI_HH
#define TT_TOOLS_JSON_MINI_HH

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace jmini
{

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> fields;

    const JsonValue* find(const std::string& key) const
    {
        for (const auto& [k, v] : fields)
            if (k == key)
                return &v;
        return nullptr;
    }

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    /// Number or null — the exporters write null for non-finite.
    bool isNumberOrNull() const
    {
        return kind == Kind::Number || kind == Kind::Null;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : _s(text) {}

    bool parse(JsonValue& out, std::string& err)
    {
        skipWs();
        if (!value(out, err))
            return false;
        skipWs();
        if (_pos != _s.size()) {
            err = at("trailing data after top-level value");
            return false;
        }
        return true;
    }

  private:
    std::string at(const std::string& msg) const
    {
        std::size_t line = 1;
        for (std::size_t i = 0; i < _pos && i < _s.size(); ++i)
            line += _s[i] == '\n';
        std::ostringstream os;
        os << msg << " (line " << line << ")";
        return os.str();
    }

    void skipWs()
    {
        while (_pos < _s.size() &&
               std::isspace(static_cast<unsigned char>(_s[_pos])))
            ++_pos;
    }

    bool value(JsonValue& out, std::string& err)
    {
        if (_pos >= _s.size()) {
            err = at("unexpected end of input");
            return false;
        }
        const char c = _s[_pos];
        if (c == '{')
            return object(out, err);
        if (c == '[')
            return array(out, err);
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return string(out.str, err);
        }
        if (c == 't' || c == 'f')
            return boolean(out, err);
        if (c == 'n')
            return literal("null", err) &&
                   (out.kind = JsonValue::Kind::Null, true);
        return number(out, err);
    }

    bool literal(const char* word, std::string& err)
    {
        const std::size_t n = std::string(word).size();
        if (_s.compare(_pos, n, word) != 0) {
            err = at(std::string("expected '") + word + "'");
            return false;
        }
        _pos += n;
        return true;
    }

    bool boolean(JsonValue& out, std::string& err)
    {
        out.kind = JsonValue::Kind::Bool;
        if (_s[_pos] == 't') {
            out.boolean = true;
            return literal("true", err);
        }
        out.boolean = false;
        return literal("false", err);
    }

    bool number(JsonValue& out, std::string& err)
    {
        const std::size_t start = _pos;
        if (_pos < _s.size() && (_s[_pos] == '-' || _s[_pos] == '+'))
            ++_pos;
        bool digits = false;
        while (_pos < _s.size() &&
               (std::isdigit(static_cast<unsigned char>(_s[_pos])) ||
                _s[_pos] == '.' || _s[_pos] == 'e' ||
                _s[_pos] == 'E' || _s[_pos] == '-' ||
                _s[_pos] == '+')) {
            digits |=
                std::isdigit(static_cast<unsigned char>(_s[_pos]));
            ++_pos;
        }
        if (!digits) {
            err = at("expected a number");
            return false;
        }
        out.kind = JsonValue::Kind::Number;
        out.number = std::strtod(_s.c_str() + start, nullptr);
        return true;
    }

    bool string(std::string& out, std::string& err)
    {
        if (_s[_pos] != '"') {
            err = at("expected '\"'");
            return false;
        }
        ++_pos;
        out.clear();
        while (_pos < _s.size() && _s[_pos] != '"') {
            char c = _s[_pos++];
            if (c == '\\') {
                if (_pos >= _s.size()) {
                    err = at("unterminated escape");
                    return false;
                }
                const char e = _s[_pos++];
                switch (e) {
                  case '"': c = '"'; break;
                  case '\\': c = '\\'; break;
                  case '/': c = '/'; break;
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case 'r': c = '\r'; break;
                  case 'b': c = '\b'; break;
                  case 'f': c = '\f'; break;
                  case 'u':
                    // The exporters never emit \u escapes; accept
                    // and pass the raw sequence through.
                    if (_pos + 4 > _s.size()) {
                        err = at("truncated \\u escape");
                        return false;
                    }
                    out += "\\u";
                    out += _s.substr(_pos, 4);
                    _pos += 4;
                    continue;
                  default:
                    err = at("bad escape character");
                    return false;
                }
            }
            out += c;
        }
        if (_pos >= _s.size()) {
            err = at("unterminated string");
            return false;
        }
        ++_pos; // closing quote
        return true;
    }

    bool array(JsonValue& out, std::string& err)
    {
        out.kind = JsonValue::Kind::Array;
        ++_pos; // '['
        skipWs();
        if (_pos < _s.size() && _s[_pos] == ']') {
            ++_pos;
            return true;
        }
        while (true) {
            JsonValue item;
            if (!value(item, err))
                return false;
            out.items.push_back(std::move(item));
            skipWs();
            if (_pos >= _s.size()) {
                err = at("unterminated array");
                return false;
            }
            if (_s[_pos] == ',') {
                ++_pos;
                skipWs();
                continue;
            }
            if (_s[_pos] == ']') {
                ++_pos;
                return true;
            }
            err = at("expected ',' or ']'");
            return false;
        }
    }

    bool object(JsonValue& out, std::string& err)
    {
        out.kind = JsonValue::Kind::Object;
        ++_pos; // '{'
        skipWs();
        if (_pos < _s.size() && _s[_pos] == '}') {
            ++_pos;
            return true;
        }
        while (true) {
            std::string key;
            if (!string(key, err))
                return false;
            skipWs();
            if (_pos >= _s.size() || _s[_pos] != ':') {
                err = at("expected ':'");
                return false;
            }
            ++_pos;
            skipWs();
            JsonValue v;
            if (!value(v, err))
                return false;
            out.fields.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (_pos >= _s.size()) {
                err = at("unterminated object");
                return false;
            }
            if (_s[_pos] == ',') {
                ++_pos;
                skipWs();
                continue;
            }
            if (_s[_pos] == '}') {
                ++_pos;
                return true;
            }
            err = at("expected ',' or '}'");
            return false;
        }
    }

    const std::string& _s;
    std::size_t _pos = 0;
};

} // namespace jmini

#endif // TT_TOOLS_JSON_MINI_HH
