/**
 * @file
 * stats_lint — schema validator for ttsim's machine-readable JSON:
 * the --stats-json dump and the --telemetry report.
 *
 *   stats_lint [--stats] stats.json [...]
 *   stats_lint --telemetry telem.json [...]
 *
 * A mode flag applies to every following file; the default is
 * --stats. Checks, per --stats file:
 *   - top level is an object with "counters", "averages", and
 *     "histograms" objects (all three present, even when empty);
 *   - every counter is a non-negative integer;
 *   - every average has mean/count/min/max/variance/stddev, each a
 *     finite number or null (the exporter writes null for
 *     non-finite values, e.g. a NaN-poisoned mean); count is a
 *     non-negative integer;
 *   - every histogram has width > 0, a non-empty "buckets" array of
 *     non-negative integers, non-negative underflow/overflow
 *     integers, and a "summary" shaped like an average whose count
 *     never exceeds buckets+underflow+overflow (non-finite samples
 *     count as underflow but stay out of the summary).
 *
 * Per --telemetry file:
 *   - "nodes" is a positive integer; "mem" and "host" objects exist;
 *   - mem.samples/total_peak_bytes are non-negative integers,
 *     mem.subsystems maps names to {final_bytes, peak_bytes} with
 *     peak >= final, and total_peak_bytes >= every subsystem peak
 *     (the total is the peak of the sum);
 *   - host has wall_ms/sample_every/events/timed_events/
 *     attributed_pct and a categories_ms object holding exactly
 *     dispatch/handler/net/checker/transport/engine, every value a
 *     non-negative number or null; attributed_pct <= 100.5 (the
 *     extrapolation is clamped to the measured wall time);
 *   - an "engine" section, when present, has lane_executed sized to
 *     "lanes", mailbox_hwm and worker_stall_ms sized to "threads",
 *     and lane_events equal to the sum of lane_executed.
 *
 * Exit status: 0 = all files clean, 1 = lint errors, 2 = usage/IO.
 */

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "json_mini.hh"

using jmini::JsonParser;
using jmini::JsonValue;

namespace
{

struct Lint
{
    const char* file;
    int errors = 0;

    void fail(const std::string& where, const std::string& msg)
    {
        std::fprintf(stderr, "%s: %s: %s\n", file, where.c_str(),
                     msg.c_str());
        ++errors;
    }
};

bool
isCount(const JsonValue& v)
{
    return v.isNumber() && v.number >= 0 &&
           v.number == std::floor(v.number);
}

/** Non-negative number, or the exporter's null-for-non-finite. */
bool
isStatNum(const JsonValue* v)
{
    return v && (v->kind == JsonValue::Kind::Null ||
                 (v->isNumber() && std::isfinite(v->number)));
}

void
lintSummary(Lint& lint, const std::string& where, const JsonValue& s)
{
    if (!s.isObject()) {
        lint.fail(where, "summary is not an object");
        return;
    }
    for (const char* key :
         {"mean", "count", "min", "max", "variance", "stddev"}) {
        const JsonValue* v = s.find(key);
        if (!v) {
            lint.fail(where, std::string("missing \"") + key + "\"");
            continue;
        }
        if (!isStatNum(v))
            lint.fail(where, std::string("\"") + key +
                                 "\" is not a finite number or null");
    }
    const JsonValue* count = s.find("count");
    if (count && count->isNumber() && !isCount(*count))
        lint.fail(where, "count is not a non-negative integer");
}

int
lintStats(const char* path, const JsonValue& root)
{
    Lint lint{path};
    if (!root.isObject()) {
        lint.fail("top", "not an object");
        return 1;
    }
    for (const char* section : {"counters", "averages", "histograms"}) {
        if (!root.find(section) || !root.find(section)->isObject())
            lint.fail("top", std::string("missing \"") + section +
                                 "\" object");
    }
    if (lint.errors)
        return 1;

    for (const auto& [name, v] : root.find("counters")->fields) {
        if (!isCount(v))
            lint.fail("counter " + name,
                      "not a non-negative integer");
    }
    for (const auto& [name, v] : root.find("averages")->fields)
        lintSummary(lint, "average " + name, v);
    for (const auto& [name, h] : root.find("histograms")->fields) {
        const std::string where = "histogram " + name;
        if (!h.isObject()) {
            lint.fail(where, "not an object");
            continue;
        }
        const JsonValue* width = h.find("width");
        if (!width || !width->isNumber() || width->number <= 0)
            lint.fail(where, "width is not a positive number");
        const JsonValue* buckets = h.find("buckets");
        double inBuckets = 0;
        if (!buckets || !buckets->isArray() || buckets->items.empty()) {
            lint.fail(where, "missing non-empty \"buckets\" array");
        } else {
            for (const JsonValue& b : buckets->items) {
                if (!isCount(b)) {
                    lint.fail(where,
                              "bucket is not a non-negative integer");
                    break;
                }
                inBuckets += b.number;
            }
        }
        double under = 0, over = 0;
        for (const char* key : {"underflow", "overflow"}) {
            const JsonValue* v = h.find(key);
            if (!v || !isCount(*v))
                lint.fail(where, std::string("\"") + key +
                                     "\" is not a non-negative "
                                     "integer");
            else
                (std::strcmp(key, "underflow") == 0 ? under : over) =
                    v->number;
        }
        const JsonValue* summary = h.find("summary");
        if (!summary) {
            lint.fail(where, "missing \"summary\"");
            continue;
        }
        lintSummary(lint, where + " summary", *summary);
        // Non-finite samples land in underflow but stay out of the
        // summary, so the summary can only undershoot the bucket sum.
        const JsonValue* count = summary->find("count");
        if (count && count->isNumber() &&
            count->number > inBuckets + under + over)
            lint.fail(where, "summary count exceeds "
                             "buckets + underflow + overflow");
    }

    if (lint.errors) {
        std::fprintf(stderr, "%s: %d lint error(s)\n", path,
                     lint.errors);
        return 1;
    }
    std::printf("%s: ok (%zu counters, %zu averages, %zu "
                "histograms)\n",
                path, root.find("counters")->fields.size(),
                root.find("averages")->fields.size(),
                root.find("histograms")->fields.size());
    return 0;
}

int
lintTelemetry(const char* path, const JsonValue& root)
{
    Lint lint{path};
    if (!root.isObject()) {
        lint.fail("top", "not an object");
        return 1;
    }
    const JsonValue* nodes = root.find("nodes");
    if (!nodes || !isCount(*nodes) || nodes->number < 1)
        lint.fail("top", "\"nodes\" is not a positive integer");

    const JsonValue* mem = root.find("mem");
    if (!mem || !mem->isObject()) {
        lint.fail("top", "missing \"mem\" object");
    } else {
        for (const char* key : {"samples", "total_peak_bytes"}) {
            const JsonValue* v = mem->find(key);
            if (!v || !isCount(*v))
                lint.fail("mem", std::string("\"") + key +
                                     "\" is not a non-negative "
                                     "integer");
        }
        if (!isStatNum(mem->find("peak_bytes_per_node")))
            lint.fail("mem", "\"peak_bytes_per_node\" is not a "
                             "finite number or null");
        const JsonValue* subs = mem->find("subsystems");
        const JsonValue* total = mem->find("total_peak_bytes");
        if (!subs || !subs->isObject()) {
            lint.fail("mem", "missing \"subsystems\" object");
        } else {
            for (const auto& [name, s] : subs->fields) {
                const std::string where = "mem.subsystems." + name;
                const JsonValue* fin =
                    s.isObject() ? s.find("final_bytes") : nullptr;
                const JsonValue* peak =
                    s.isObject() ? s.find("peak_bytes") : nullptr;
                if (!fin || !peak || !isCount(*fin) || !isCount(*peak)) {
                    lint.fail(where, "needs integer final_bytes and "
                                     "peak_bytes");
                    continue;
                }
                if (peak->number < fin->number)
                    lint.fail(where, "peak_bytes < final_bytes");
                // total(t) >= cur_i(t) at every sample, so the peak
                // of the total dominates every subsystem peak.
                if (total && total->isNumber() &&
                    peak->number > total->number)
                    lint.fail(where,
                              "peak_bytes exceeds total_peak_bytes");
            }
        }
    }

    const JsonValue* host = root.find("host");
    if (!host || !host->isObject()) {
        lint.fail("top", "missing \"host\" object");
    } else {
        for (const char* key :
             {"wall_ms", "sample_every", "events", "timed_events",
              "attributed_pct"}) {
            if (!isStatNum(host->find(key)))
                lint.fail("host", std::string("\"") + key +
                                      "\" is not a finite number or "
                                      "null");
        }
        const JsonValue* pct = host->find("attributed_pct");
        if (pct && pct->isNumber() &&
            (pct->number < 0 || pct->number > 100.5))
            lint.fail("host", "attributed_pct outside [0, 100]");
        const JsonValue* cats = host->find("categories_ms");
        if (!cats || !cats->isObject()) {
            lint.fail("host", "missing \"categories_ms\" object");
        } else {
            for (const char* key : {"dispatch", "handler", "net",
                                    "checker", "transport", "engine"}) {
                const JsonValue* v = cats->find(key);
                if (!isStatNum(v) ||
                    (v->isNumber() && v->number < 0))
                    lint.fail("host.categories_ms",
                              std::string("\"") + key +
                                  "\" is not a non-negative number "
                                  "or null");
            }
        }
    }

    const JsonValue* eng = root.find("engine");
    if (eng) {
        if (!eng->isObject()) {
            lint.fail("engine", "not an object");
        } else {
            for (const char* key :
                 {"threads", "lanes", "windows", "serial_windows",
                  "lane_events", "global_events"}) {
                const JsonValue* v = eng->find(key);
                if (!v || !isCount(*v))
                    lint.fail("engine", std::string("\"") + key +
                                            "\" is not a "
                                            "non-negative integer");
            }
            const JsonValue* lanes = eng->find("lanes");
            const JsonValue* threads = eng->find("threads");
            const JsonValue* laneExec = eng->find("lane_executed");
            if (!laneExec || !laneExec->isArray() ||
                (lanes && lanes->isNumber() &&
                 laneExec->items.size() !=
                     static_cast<std::size_t>(lanes->number))) {
                lint.fail("engine", "lane_executed is not an array "
                                    "sized to \"lanes\"");
            } else if (const JsonValue* le = eng->find("lane_events")) {
                double sum = 0;
                for (const JsonValue& v : laneExec->items)
                    sum += v.isNumber() ? v.number : 0;
                if (le->isNumber() && sum != le->number)
                    lint.fail("engine", "lane_events does not equal "
                                        "the sum of lane_executed");
            }
            for (const char* key : {"mailbox_hwm", "worker_stall_ms"}) {
                const JsonValue* v = eng->find(key);
                if (!v || !v->isArray() ||
                    (threads && threads->isNumber() &&
                     v->items.size() !=
                         static_cast<std::size_t>(threads->number)))
                    lint.fail("engine",
                              std::string("\"") + key +
                                  "\" is not an array sized to "
                                  "\"threads\"");
            }
        }
    }

    if (lint.errors) {
        std::fprintf(stderr, "%s: %d lint error(s)\n", path,
                     lint.errors);
        return 1;
    }
    std::printf("%s: ok (telemetry%s)\n", path,
                eng ? ", engine section" : "");
    return 0;
}

int
lintFile(const char* path, bool telemetry)
{
    std::ifstream f(path);
    if (!f) {
        std::fprintf(stderr, "stats_lint: cannot open %s\n", path);
        return 2;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    const std::string text = buf.str();

    JsonValue root;
    std::string err;
    if (!JsonParser(text).parse(root, err)) {
        std::fprintf(stderr, "%s: JSON parse error: %s\n", path,
                     err.c_str());
        return 1;
    }
    return telemetry ? lintTelemetry(path, root)
                     : lintStats(path, root);
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: stats_lint [--stats|--telemetry] "
                     "FILE.json [...]\n");
        return 2;
    }
    bool telemetry = false;
    bool any = false;
    int worst = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--stats") == 0) {
            telemetry = false;
            continue;
        }
        if (std::strcmp(argv[i], "--telemetry") == 0) {
            telemetry = true;
            continue;
        }
        any = true;
        const int rc = lintFile(argv[i], telemetry);
        if (rc > worst)
            worst = rc;
    }
    if (!any) {
        std::fprintf(stderr, "stats_lint: no input files\n");
        return 2;
    }
    return worst;
}
