/**
 * @file
 * trace_lint — validator for ttsim's Perfetto/Chrome trace output.
 *
 *   trace_lint trace.json [trace2.json ...]
 *
 * Checks, per file:
 *   - the file parses as a JSON object with a "traceEvents" array
 *     (schema validity; a truncated or malformed export fails here);
 *   - every event has the keys its phase requires (ph/pid/tid always;
 *     ts for non-metadata events; dur for "X" slices; id for flow
 *     events; name+args for "M" metadata);
 *   - timestamps and durations are non-negative integers;
 *   - begin/end spans balance: every "E" closes a "B" on the same
 *     track and no "B" is left open at end of file ("X" complete
 *     slices are self-balancing);
 *   - transaction flows are well-formed: per flow id exactly one
 *     start ("s"), the start precedes every other flow event of that
 *     id (both in file order and in timestamp order), and at most one
 *     finish ("f"). A finish is NOT required to be last: coherence
 *     side effects (update pushes, late acks) may legitimately carry
 *     a transaction id after its miss completed.
 *
 * Exit status: 0 = all files clean, 1 = lint errors, 2 = usage/IO.
 */

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace
{

// ---------------------------------------------------------------
// A minimal recursive-descent JSON parser: just enough to validate
// the trace exporter's output without external dependencies.
// ---------------------------------------------------------------

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> fields;

    const JsonValue* find(const std::string& key) const
    {
        for (const auto& [k, v] : fields)
            if (k == key)
                return &v;
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : _s(text) {}

    bool parse(JsonValue& out, std::string& err)
    {
        skipWs();
        if (!value(out, err))
            return false;
        skipWs();
        if (_pos != _s.size()) {
            err = at("trailing data after top-level value");
            return false;
        }
        return true;
    }

  private:
    std::string at(const std::string& msg) const
    {
        std::size_t line = 1;
        for (std::size_t i = 0; i < _pos && i < _s.size(); ++i)
            line += _s[i] == '\n';
        std::ostringstream os;
        os << msg << " (line " << line << ")";
        return os.str();
    }

    void skipWs()
    {
        while (_pos < _s.size() &&
               std::isspace(static_cast<unsigned char>(_s[_pos])))
            ++_pos;
    }

    bool value(JsonValue& out, std::string& err)
    {
        if (_pos >= _s.size()) {
            err = at("unexpected end of input");
            return false;
        }
        const char c = _s[_pos];
        if (c == '{')
            return object(out, err);
        if (c == '[')
            return array(out, err);
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return string(out.str, err);
        }
        if (c == 't' || c == 'f')
            return boolean(out, err);
        if (c == 'n')
            return literal("null", err) &&
                   (out.kind = JsonValue::Kind::Null, true);
        return number(out, err);
    }

    bool literal(const char* word, std::string& err)
    {
        const std::size_t n = std::string(word).size();
        if (_s.compare(_pos, n, word) != 0) {
            err = at(std::string("expected '") + word + "'");
            return false;
        }
        _pos += n;
        return true;
    }

    bool boolean(JsonValue& out, std::string& err)
    {
        out.kind = JsonValue::Kind::Bool;
        if (_s[_pos] == 't') {
            out.boolean = true;
            return literal("true", err);
        }
        out.boolean = false;
        return literal("false", err);
    }

    bool number(JsonValue& out, std::string& err)
    {
        const std::size_t start = _pos;
        if (_pos < _s.size() && (_s[_pos] == '-' || _s[_pos] == '+'))
            ++_pos;
        bool digits = false;
        while (_pos < _s.size() &&
               (std::isdigit(static_cast<unsigned char>(_s[_pos])) ||
                _s[_pos] == '.' || _s[_pos] == 'e' || _s[_pos] == 'E' ||
                _s[_pos] == '-' || _s[_pos] == '+')) {
            digits |= std::isdigit(static_cast<unsigned char>(_s[_pos]));
            ++_pos;
        }
        if (!digits) {
            err = at("expected a number");
            return false;
        }
        out.kind = JsonValue::Kind::Number;
        out.number = std::strtod(_s.c_str() + start, nullptr);
        return true;
    }

    bool string(std::string& out, std::string& err)
    {
        if (_s[_pos] != '"') {
            err = at("expected '\"'");
            return false;
        }
        ++_pos;
        out.clear();
        while (_pos < _s.size() && _s[_pos] != '"') {
            char c = _s[_pos++];
            if (c == '\\') {
                if (_pos >= _s.size()) {
                    err = at("unterminated escape");
                    return false;
                }
                const char e = _s[_pos++];
                switch (e) {
                  case '"': c = '"'; break;
                  case '\\': c = '\\'; break;
                  case '/': c = '/'; break;
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case 'r': c = '\r'; break;
                  case 'b': c = '\b'; break;
                  case 'f': c = '\f'; break;
                  case 'u':
                    // The exporter never emits \u escapes; accept and
                    // pass the raw sequence through.
                    if (_pos + 4 > _s.size()) {
                        err = at("truncated \\u escape");
                        return false;
                    }
                    out += "\\u";
                    out += _s.substr(_pos, 4);
                    _pos += 4;
                    continue;
                  default:
                    err = at("bad escape character");
                    return false;
                }
            }
            out += c;
        }
        if (_pos >= _s.size()) {
            err = at("unterminated string");
            return false;
        }
        ++_pos; // closing quote
        return true;
    }

    bool array(JsonValue& out, std::string& err)
    {
        out.kind = JsonValue::Kind::Array;
        ++_pos; // '['
        skipWs();
        if (_pos < _s.size() && _s[_pos] == ']') {
            ++_pos;
            return true;
        }
        while (true) {
            JsonValue item;
            if (!value(item, err))
                return false;
            out.items.push_back(std::move(item));
            skipWs();
            if (_pos >= _s.size()) {
                err = at("unterminated array");
                return false;
            }
            if (_s[_pos] == ',') {
                ++_pos;
                skipWs();
                continue;
            }
            if (_s[_pos] == ']') {
                ++_pos;
                return true;
            }
            err = at("expected ',' or ']'");
            return false;
        }
    }

    bool object(JsonValue& out, std::string& err)
    {
        out.kind = JsonValue::Kind::Object;
        ++_pos; // '{'
        skipWs();
        if (_pos < _s.size() && _s[_pos] == '}') {
            ++_pos;
            return true;
        }
        while (true) {
            std::string key;
            if (!string(key, err))
                return false;
            skipWs();
            if (_pos >= _s.size() || _s[_pos] != ':') {
                err = at("expected ':'");
                return false;
            }
            ++_pos;
            skipWs();
            JsonValue v;
            if (!value(v, err))
                return false;
            out.fields.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (_pos >= _s.size()) {
                err = at("unterminated object");
                return false;
            }
            if (_s[_pos] == ',') {
                ++_pos;
                skipWs();
                continue;
            }
            if (_s[_pos] == '}') {
                ++_pos;
                return true;
            }
            err = at("expected ',' or '}'");
            return false;
        }
    }

    const std::string& _s;
    std::size_t _pos = 0;
};

// ---------------------------------------------------------------
// Lint rules
// ---------------------------------------------------------------

struct Lint
{
    const char* file;
    int errors = 0;

    void fail(std::size_t ev, const std::string& msg)
    {
        std::fprintf(stderr, "%s: event %zu: %s\n", file, ev,
                     msg.c_str());
        ++errors;
    }
};

bool
numberField(const JsonValue& ev, const char* key, double& out)
{
    const JsonValue* v = ev.find(key);
    if (!v || v->kind != JsonValue::Kind::Number)
        return false;
    out = v->number;
    return true;
}

/** Per-flow-id bookkeeping for the transaction flow rules. */
struct FlowState
{
    std::size_t starts = 0;
    std::size_t finishes = 0;
    bool sawNonStartFirst = false;
    double startTs = 0;
    double minTs = 0;
    bool any = false;
};

int
lintFile(const char* path)
{
    std::ifstream f(path);
    if (!f) {
        std::fprintf(stderr, "trace_lint: cannot open %s\n", path);
        return 2;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    const std::string text = buf.str();

    JsonValue root;
    std::string err;
    if (!JsonParser(text).parse(root, err)) {
        std::fprintf(stderr, "%s: JSON parse error: %s\n", path,
                     err.c_str());
        return 1;
    }
    if (root.kind != JsonValue::Kind::Object) {
        std::fprintf(stderr, "%s: top level is not an object\n", path);
        return 1;
    }
    const JsonValue* events = root.find("traceEvents");
    if (!events || events->kind != JsonValue::Kind::Array) {
        std::fprintf(stderr, "%s: missing \"traceEvents\" array\n",
                     path);
        return 1;
    }

    Lint lint{path};
    // Open "B" spans per (pid, tid) track, for begin/end balance.
    std::map<std::pair<double, double>, std::size_t> openSpans;
    std::map<double, FlowState> flows;
    std::size_t flowEvents = 0;

    for (std::size_t i = 0; i < events->items.size(); ++i) {
        const JsonValue& ev = events->items[i];
        if (ev.kind != JsonValue::Kind::Object) {
            lint.fail(i, "event is not an object");
            continue;
        }
        const JsonValue* phv = ev.find("ph");
        if (!phv || phv->kind != JsonValue::Kind::String ||
            phv->str.size() != 1) {
            lint.fail(i, "missing or malformed \"ph\"");
            continue;
        }
        const char ph = phv->str[0];
        double pid = 0, tid = 0, ts = 0;
        if (!numberField(ev, "pid", pid))
            lint.fail(i, "missing numeric \"pid\"");
        if (!numberField(ev, "tid", tid))
            lint.fail(i, "missing numeric \"tid\"");

        if (ph == 'M') {
            if (!ev.find("name") || !ev.find("args"))
                lint.fail(i, "metadata event without name/args");
            continue;
        }
        if (!numberField(ev, "ts", ts)) {
            lint.fail(i, "missing numeric \"ts\"");
            continue;
        }
        if (ts < 0)
            lint.fail(i, "negative timestamp");

        switch (ph) {
          case 'X': {
            double dur = 0;
            if (!numberField(ev, "dur", dur))
                lint.fail(i, "complete slice without \"dur\"");
            else if (dur < 0)
                lint.fail(i, "negative duration");
            break;
          }
          case 'B':
            ++openSpans[{pid, tid}];
            break;
          case 'E': {
            auto it = openSpans.find({pid, tid});
            if (it == openSpans.end() || it->second == 0)
                lint.fail(i, "span end without a matching begin");
            else
                --it->second;
            break;
          }
          case 's':
          case 't':
          case 'f': {
            ++flowEvents;
            double id = 0;
            if (!numberField(ev, "id", id)) {
                lint.fail(i, "flow event without \"id\"");
                break;
            }
            FlowState& fs = flows[id];
            if (ph == 's') {
                ++fs.starts;
                fs.startTs = ts;
            } else {
                if (fs.starts == 0)
                    fs.sawNonStartFirst = true;
                if (ph == 'f')
                    ++fs.finishes;
            }
            if (!fs.any || ts < fs.minTs)
                fs.minTs = ts;
            fs.any = true;
            break;
          }
          case 'i':
            if (!ev.find("s"))
                lint.fail(i, "instant without scope \"s\"");
            break;
          case 'C':
            if (!ev.find("args"))
                lint.fail(i, "counter without \"args\"");
            break;
          default:
            lint.fail(i, std::string("unknown phase '") + ph + "'");
        }
    }

    for (const auto& [track, open] : openSpans) {
        if (open) {
            std::ostringstream os;
            os << open << " unclosed span(s) on tid "
               << track.second;
            lint.fail(events->items.size(), os.str());
        }
    }
    for (const auto& [id, fs] : flows) {
        std::ostringstream os;
        os << "flow " << static_cast<std::uint64_t>(id);
        if (fs.starts != 1)
            lint.fail(events->items.size(),
                      os.str() + ": expected exactly one start, got " +
                          std::to_string(fs.starts));
        if (fs.sawNonStartFirst)
            lint.fail(events->items.size(),
                      os.str() + ": flow step/finish precedes its start");
        if (fs.finishes > 1)
            lint.fail(events->items.size(),
                      os.str() + ": more than one finish");
        if (fs.starts == 1 && fs.any && fs.startTs > fs.minTs)
            lint.fail(events->items.size(),
                      os.str() + ": start timestamp after a flow event");
    }

    if (lint.errors) {
        std::fprintf(stderr, "%s: %d lint error(s)\n", path,
                     lint.errors);
        return 1;
    }
    std::printf("%s: ok (%zu events, %zu flow events, %zu flows)\n",
                path, events->items.size(), flowEvents, flows.size());
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: trace_lint TRACE.json [MORE.json ...]\n");
        return 2;
    }
    int worst = 0;
    for (int i = 1; i < argc; ++i) {
        const int rc = lintFile(argv[i]);
        if (rc > worst)
            worst = rc;
    }
    return worst;
}
