/**
 * @file
 * ttsim — command-line driver for the Tempest/Typhoon simulator.
 *
 * Runs any Table 3 workload on any target system with configurable
 * machine parameters and prints execution time, checksum, and
 * (optionally) the full statistics dump.
 *
 *   ttsim --system=stache --app=em3d --dataset=small --nodes=32
 *   ttsim --system=dirnnb --app=barnes --cache-kb=4 --stats
 *   ttsim --system=update --app=em3d --remote=40
 *   ttsim --list
 *
 * Systems: dirnnb | stache | migratory | update (EM3D only).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include <fstream>

#include "apps/workloads.hh"
#include "config/bench_harness.hh"
#include "config/builders.hh"
#include "config/campaign.hh"
#include "obs/sharing.hh"
#include "obs/txn.hh"

using namespace tt;

namespace
{

struct Options
{
    std::string system = "stache";
    std::string app = "em3d";
    std::string dataset = "tiny";
    int nodes = 32;
    int cacheKb = 256;
    int blockSize = 32;
    int scale = 1;
    int netLatency = 11;
    int quantum = 32;
    int threads = 1; ///< parallel-engine workers (1 = serial engine)
    double remotePct = 20;
    std::uint64_t seed = 0;
    std::string benchJson; ///< write a wall-clock JSON report here
    std::string traceFile; ///< Perfetto/Chrome-trace JSON output
    std::string statsJson; ///< machine-readable StatSet dump
    bool analyze = false;    ///< run the online sharing analyzer
    std::string analyzeJson; ///< sharing-analysis JSON path ("" = none)
    bool traceCritical = false; ///< run the transaction tracer
    std::string txnJson;     ///< critical-path JSON path ("" = none)
    bool telemetry = false;  ///< simulator self-telemetry (§16)
    std::string telemetryJson; ///< telemetry JSON path ("" = none)
    std::string fault;     ///< protocol fault to inject (demo/testing)
    Tick traceSample = 0;  ///< counter-sampling period (ticks)
    int traceRing = 256;   ///< crash-ring capacity per node
    bool stats = false;
    bool table2 = false;
    bool list = false;
    bool check = false;          ///< run the coherence sanitizer
    std::string checkMode = "fast"; ///< fast | paranoid
    bool perturb = false;        ///< randomize schedules (implies check)
    std::uint64_t perturbSeed = 0;
    int jitter = 3;              ///< max extra net latency under perturb
    bool jitterSet = false;      ///< --jitter given explicitly

    // Unreliable-network fault injection (DESIGN.md §10).
    std::string faults;          ///< --faults=SPEC (fault_model.hh)
    bool noReliable = false;     ///< face the raw lossy fabric
    Tick horizon = 0;            ///< watchdog horizon (0 = default)
    Tick rto = 0;                ///< transport initial RTO (0 = default)
    int retries = 0;             ///< transport retry cap (0 = default)
    int campaign = 0;            ///< seeds per system (0 = single run)
    std::string campaignJson;    ///< campaign report path
    std::string systems;         ///< campaign system list (csv)
    int shardIndex = 0;          ///< --campaign-shard=I/N
    int shardCount = 1;

    // Checkpoint/restart (DESIGN.md §15).
    std::uint64_t checkpointEpoch = 0; ///< write at this barrier epoch
    std::string checkpointFile = "ttsim.ckpt";
    std::string restoreFile;     ///< continue from this snapshot
};

void
usage()
{
    std::puts(
        "ttsim — Tempest/Typhoon user-level shared memory simulator\n"
        "\n"
        "  --system=dirnnb|stache|migratory|update   target (default"
        " stache)\n"
        "  --app=appbt|barnes|mp3d|ocean|em3d        workload\n"
        "  --dataset=tiny|small|large                Table 3 size\n"
        "  --nodes=N         processing nodes (default 32)\n"
        "  --cache-kb=N      CPU cache size in KB (default 256)\n"
        "  --block=N         coherence block bytes (default 32)\n"
        "  --scale=N         divide problem size by N (default 1)\n"
        "  --net-latency=N   network latency cycles (default 11)\n"
        "  --quantum=N       local-time window (default 32)\n"
        "  --threads=N       parallel-engine workers (default 1 ="
        " serial\n"
        "                    cross-check engine; results byte-identical"
        " for any N)\n"
        "  --remote=PCT      EM3D remote-edge percent (default 20)\n"
        "  --seed=N          machine RNG seed\n"
        "  --bench-json=F    write a wall-clock benchmark report"
        " (events/sec) to F\n"
        "  --trace=F         stream a Perfetto/Chrome trace to F"
        " (open at ui.perfetto.dev)\n"
        "  --trace-sample=N  also sample every counter each N ticks"
        " into the trace\n"
        "  --trace-ring=N    crash-ring capacity per node"
        " (default 256)\n"
        "  --stats-json=F    write the full statistics set to F as"
        " JSON\n"
        "  --analyze[=F]     classify per-block sharing patterns and"
        " print the\n"
        "                    protocol-advisor report (JSON to F)\n"
        "  --trace-critical[=F]  trace coherence transactions and print"
        " the\n"
        "                    critical-path attribution report (JSON to"
        " F);\n"
        "                    composes with --trace (flow events) and"
        " --faults\n"
        "  --telemetry[=F]   simulator self-telemetry: per-subsystem"
        " memory\n"
        "                    accounting, host-time attribution, lane"
        " utilization\n"
        "                    (JSON to F); simulated results are"
        " byte-identical\n"
        "                    with or without it, and it composes with"
        " --threads\n"
        "  --fault=NAME      inject a protocol bug (skip-invalidate |"
        " skip-downgrade)\n"
        "  --check[=MODE]    run the coherence sanitizer (exit 3 on"
        " violation);\n"
        "                    MODE: fast (shadow engine, default) |"
        " paranoid\n"
        "                    (byte-granular reference oracle)\n"
        "  --perturb=SEED    randomize same-tick order + net jitter"
        " (implies --check)\n"
        "  --jitter=N        max perturbation latency jitter"
        " (default 3)\n"
        "  --faults=SPEC     unreliable fabric: drop=P,dup=P,"
        "reorder=P[:MAX],\n"
        "                    partition=P[:LEN],pause=P[:LEN],cut=A-B,\n"
        "                    crash@TICK:NODE,seed=N\n"
        "                    (needs a seed: seed= in SPEC or --seed;\n"
        "                    crash@ injects a crash-stop failure that\n"
        "                    the recovery protocol rolls back — exit 5\n"
        "                    if unrecoverable)\n"
        "  --no-reliable     disable the reliable transport (negative"
        " control)\n"
        "  --horizon=N       watchdog horizon in ticks (default"
        " 100000)\n"
        "  --rto=N           transport initial retransmit timeout\n"
        "  --retries=N       transport retry cap before dead-link\n"
        "  --campaign=N      sweep N derived fault seeds per system"
        " (needs --faults)\n"
        "  --campaign-json=F write the campaign report to F\n"
        "  --campaign-shard=I/N  run only seed indices with"
        " i%N==I; the\n"
        "                    union of the N shards equals the unsharded"
        " campaign\n"
        "  --systems=A,B     campaign targets (default all four)\n"
        "  --checkpoint=E[,F]  write a checkpoint at barrier epoch E"
        " (default\n"
        "                    file ttsim.ckpt); fault-free serial runs"
        " only\n"
        "  --restore=F       continue a run from checkpoint F; the"
        " continuation\n"
        "                    is byte-identical to the checkpointing"
        " run\n"
        "  --stats           dump all statistics after the run\n"
        "  --table2          print the Table 2 configuration\n"
        "  --list            list workloads and exit\n");
}

bool
parseArg(Options& o, const std::string& arg)
{
    auto eat = [&](const char* key, std::string* out) {
        const std::size_t n = std::strlen(key);
        if (arg.compare(0, n, key) == 0) {
            *out = arg.substr(n);
            return true;
        }
        return false;
    };
    std::string v;
    if (eat("--system=", &v)) {
        o.system = v;
    } else if (eat("--app=", &v)) {
        o.app = v;
    } else if (eat("--dataset=", &v)) {
        o.dataset = v;
    } else if (eat("--nodes=", &v)) {
        o.nodes = std::atoi(v.c_str());
    } else if (eat("--cache-kb=", &v)) {
        o.cacheKb = std::atoi(v.c_str());
    } else if (eat("--block=", &v)) {
        o.blockSize = std::atoi(v.c_str());
    } else if (eat("--scale=", &v)) {
        o.scale = std::atoi(v.c_str());
    } else if (eat("--net-latency=", &v)) {
        o.netLatency = std::atoi(v.c_str());
    } else if (eat("--quantum=", &v)) {
        o.quantum = std::atoi(v.c_str());
    } else if (eat("--remote=", &v)) {
        o.remotePct = std::atof(v.c_str());
    } else if (eat("--seed=", &v)) {
        o.seed = std::strtoull(v.c_str(), nullptr, 0);
    } else if (eat("--bench-json=", &v)) {
        o.benchJson = v;
    } else if (eat("--trace=", &v)) {
        o.traceFile = v;
    } else if (eat("--trace-sample=", &v)) {
        o.traceSample = std::strtoull(v.c_str(), nullptr, 0);
    } else if (eat("--trace-ring=", &v)) {
        o.traceRing = std::atoi(v.c_str());
    } else if (eat("--stats-json=", &v)) {
        o.statsJson = v;
    } else if (eat("--analyze=", &v)) {
        o.analyze = true;
        o.analyzeJson = v;
    } else if (arg == "--analyze") {
        o.analyze = true;
    } else if (eat("--trace-critical=", &v)) {
        o.traceCritical = true;
        o.txnJson = v;
    } else if (arg == "--trace-critical") {
        o.traceCritical = true;
    } else if (eat("--telemetry=", &v)) {
        o.telemetry = true;
        o.telemetryJson = v;
    } else if (arg == "--telemetry") {
        o.telemetry = true;
    } else if (eat("--fault=", &v)) {
        o.fault = v;
    } else if (eat("--perturb=", &v)) {
        o.perturb = true;
        o.check = true;
        o.perturbSeed = std::strtoull(v.c_str(), nullptr, 0);
    } else if (eat("--jitter=", &v)) {
        o.jitter = std::atoi(v.c_str());
        o.jitterSet = true;
    } else if (eat("--faults=", &v)) {
        o.faults = v;
    } else if (eat("--threads=", &v)) {
        o.threads = std::atoi(v.c_str());
    } else if (eat("--horizon=", &v)) {
        o.horizon = std::strtoull(v.c_str(), nullptr, 0);
    } else if (eat("--rto=", &v)) {
        o.rto = std::strtoull(v.c_str(), nullptr, 0);
    } else if (eat("--retries=", &v)) {
        o.retries = std::atoi(v.c_str());
    } else if (eat("--campaign=", &v)) {
        o.campaign = std::atoi(v.c_str());
    } else if (eat("--campaign-json=", &v)) {
        o.campaignJson = v;
    } else if (eat("--campaign-shard=", &v)) {
        const std::size_t slash = v.find('/');
        if (slash == std::string::npos) {
            std::fprintf(stderr,
                         "--campaign-shard wants I/N, got '%s'\n",
                         v.c_str());
            std::exit(2);
        }
        o.shardIndex = std::atoi(v.c_str());
        o.shardCount = std::atoi(v.c_str() + slash + 1);
    } else if (eat("--systems=", &v)) {
        o.systems = v;
    } else if (eat("--checkpoint=", &v)) {
        const std::size_t comma = v.find(',');
        o.checkpointEpoch =
            std::strtoull(v.c_str(), nullptr, 0);
        if (!o.checkpointEpoch) {
            std::fprintf(stderr,
                         "--checkpoint wants EPOCH[,FILE] with "
                         "EPOCH >= 1, got '%s'\n",
                         v.c_str());
            std::exit(2);
        }
        if (comma != std::string::npos)
            o.checkpointFile = v.substr(comma + 1);
    } else if (eat("--restore=", &v)) {
        o.restoreFile = v;
    } else if (arg == "--no-reliable") {
        o.noReliable = true;
    } else if (eat("--check=", &v)) {
        o.check = true;
        o.checkMode = v;
    } else if (arg == "--check") {
        o.check = true;
    } else if (arg == "--stats") {
        o.stats = true;
    } else if (arg == "--table2") {
        o.table2 = true;
    } else if (arg == "--list") {
        o.list = true;
    } else {
        return false;
    }
    return true;
}

DataSet
parseDataSet(const std::string& s)
{
    if (s == "tiny")
        return DataSet::Tiny;
    if (s == "small")
        return DataSet::Small;
    if (s == "large")
        return DataSet::Large;
    tt_fatal("unknown dataset: ", s);
}

/** Reject contradictory flag combinations with a clear usage error. */
void
validateOptions(const Options& o)
{
    auto die = [](const char* msg) {
        std::fprintf(stderr, "ttsim: %s\n", msg);
        std::exit(2);
    };
    if (o.threads < 1 || o.threads > 256)
        die("--threads must be between 1 and 256");
    if (o.checkMode != "fast" && o.checkMode != "paranoid")
        die("--check accepts mode 'fast' or 'paranoid'");
    if (o.faults.empty()) {
        // The robustness knobs only mean something on a lossy fabric.
        if (o.noReliable)
            die("--no-reliable requires --faults");
        if (o.horizon)
            die("--horizon requires --faults");
        if (o.rto)
            die("--rto requires --faults");
        if (o.retries)
            die("--retries requires --faults");
        if (o.campaign)
            die("--campaign requires --faults");
    } else if (o.faults.find("seed=") == std::string::npos && !o.seed) {
        // An unseeded fault run is unreproducible by construction.
        die("--faults needs a seeded run: put seed=N in the spec or "
            "pass --seed=N");
    }
    if (o.jitterSet && !o.perturb)
        die("--jitter only modifies --perturb runs");
    if (o.analyze && !o.benchJson.empty()) {
        die("--analyze and --bench-json are mutually exclusive (the "
            "analyzer folds every access and would skew the "
            "wall-clock measurement)");
    }
    if (o.traceCritical && !o.benchJson.empty()) {
        die("--trace-critical and --bench-json are mutually exclusive "
            "(the tracer folds every record and would skew the "
            "wall-clock measurement)");
    }
    if (!o.campaignJson.empty() && !o.campaign)
        die("--campaign-json requires --campaign");
    if (o.campaign) {
        if (o.campaign < 1)
            die("--campaign wants a positive run count");
        if (o.perturb)
            die("--campaign and --perturb are mutually exclusive (a "
                "campaign already sweeps seeds)");
        if (!o.traceFile.empty())
            die("--campaign runs many machines; --trace applies to a "
                "single run");
        if (!o.benchJson.empty())
            die("--campaign and --bench-json are mutually exclusive");
        if (!o.statsJson.empty())
            die("--campaign and --stats-json are mutually exclusive "
                "(the report goes to --campaign-json)");
        if (!o.fault.empty())
            die("--campaign and --fault (protocol-bug injection) are "
                "mutually exclusive");
        if (o.analyze)
            die("--campaign already runs the sharing analyzer; its "
                "summary lands in the campaign report");
        if (o.traceCritical)
            die("--campaign already runs the transaction tracer; its "
                "summary lands in the campaign report");
        if (o.telemetry)
            die("--campaign and --telemetry are mutually exclusive "
                "(telemetry reports on a single machine)");
    } else if (!o.systems.empty()) {
        die("--systems requires --campaign");
    }
    if (o.shardCount != 1 || o.shardIndex != 0) {
        if (!o.campaign)
            die("--campaign-shard requires --campaign");
        if (o.shardCount < 1 || o.shardIndex < 0 ||
            o.shardIndex >= o.shardCount)
            die("--campaign-shard=I/N wants 0 <= I < N");
    }
    const bool crashes = o.faults.find("crash@") != std::string::npos;
    if (crashes) {
        if (o.noReliable)
            die("crash recovery requires the reliable transport "
                "(drop --no-reliable)");
        if (o.perturb)
            die("crash rollback replay is defined on the calendar "
                "queue; --perturb is mutually exclusive");
    }
    if (o.checkpointEpoch || !o.restoreFile.empty()) {
        if (o.checkpointEpoch && !o.restoreFile.empty())
            die("--checkpoint and --restore are mutually exclusive "
                "(restore first, then checkpoint in a later run)");
        if (!o.faults.empty())
            die("--checkpoint/--restore require a fault-free run "
                "(crash recovery snapshots in memory instead)");
        if (o.campaign)
            die("--checkpoint/--restore apply to a single run, not a "
                "campaign");
        if (o.perturb)
            die("--checkpoint/--restore and --perturb are mutually "
                "exclusive");
    }
}

/**
 * The config-identity key behind the checkpoint fingerprint: every
 * option that shapes the simulated schedule or the statistics registry
 * is folded in, so a restore under any differing configuration is
 * refused instead of silently diverging. --checkpoint/--restore
 * themselves are deliberately excluded (the restoring command line
 * drops the former and adds the latter).
 */
std::string
configKey(const Options& o)
{
    std::string k;
    auto add = [&k](const std::string& s) {
        k += s;
        k += '|';
    };
    add(o.system);
    add(o.app);
    add(o.dataset);
    add(std::to_string(o.nodes));
    add(std::to_string(o.cacheKb));
    add(std::to_string(o.blockSize));
    add(std::to_string(o.scale));
    add(std::to_string(o.netLatency));
    add(std::to_string(o.quantum));
    add(std::to_string(o.remotePct));
    add(std::to_string(o.seed));
    add(o.check ? o.checkMode : "nocheck");
    add(o.analyze ? "analyze" : "-");
    add(o.traceCritical ? "txn" : "-");
    add(o.telemetry ? "telemetry" : "-");
    add(o.traceFile.empty() ? "-" : "trace");
    add(std::to_string(o.traceSample));
    add(std::to_string(o.traceRing));
    add(o.fault.empty() ? "-" : o.fault);
    return k;
}

} // namespace

int
main(int argc, char** argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        }
        if (!parseArg(o, arg)) {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    if (o.list) {
        std::printf("%-10s %-28s %-28s\n", "app", "small", "large");
        for (const auto& w : workloadTable())
            std::printf("%-10s %-28s %-28s\n", w.app.c_str(),
                        w.smallDesc.c_str(), w.largeDesc.c_str());
        return 0;
    }

    validateOptions(o);

    MachineConfig cfg;
    cfg.core.nodes = o.nodes;
    cfg.core.cacheSize = static_cast<std::uint64_t>(o.cacheKb) * 1024;
    cfg.core.blockSize = o.blockSize;
    cfg.core.quantum = o.quantum;
    cfg.net.latency = o.netLatency;
    cfg.core.threads = o.threads;
    if (o.seed)
        cfg.core.seed = o.seed;

    cfg.check.enable = o.check;
    cfg.check.mode = o.checkMode == "paranoid"
                         ? ProtocolChecker::Mode::Paranoid
                         : ProtocolChecker::Mode::Fast;
    cfg.obs.enable = !o.traceFile.empty() || o.traceSample > 0;
    cfg.obs.traceFile = o.traceFile;
    cfg.obs.samplePeriod = o.traceSample;
    cfg.obs.analyze = o.analyze;
    cfg.obs.txn = o.traceCritical;
    cfg.obs.telemetry = o.telemetry;
    // A trace without an explicit sampling period still gets live
    // counter tracks (events/sec, net traffic, open misses) at a
    // coarse default.
    if (!o.traceFile.empty() && o.traceSample == 0)
        cfg.obs.samplePeriod = 1024;
    if (o.traceRing > 0)
        cfg.obs.ringCapacity = static_cast<std::size_t>(o.traceRing);

    if (o.fault == "skip-invalidate") {
        cfg.dir.faultSkipInvalidate = true;
    } else if (o.fault == "skip-downgrade") {
        cfg.stache.faultSkipDowngrade = true;
    } else if (!o.fault.empty()) {
        tt_fatal("unknown --fault: ", o.fault);
    }

    if (o.perturb) {
        cfg.check.perturb = true;
        cfg.check.perturbSeed = o.perturbSeed;
        // Same-tick permutation only works on the reference heap (the
        // calendar derives order from append order); switch the
        // process default before any EventQueue is constructed.
        EventQueue::setDefaultMode(EventQueue::Mode::ReferenceHeap);
        // Jittered network latency, FIFO-clamped per channel; seed
        // decorrelated from the event-order stream.
        cfg.net.jitterMax = o.jitter;
        cfg.net.jitterSeed = o.perturbSeed * 0x9e3779b97f4a7c15ULL + 1;
    }

    if (!o.faults.empty()) {
        cfg.faults = parseFaultSpec(o.faults);
        if (o.faults.find("seed=") == std::string::npos) {
            // Derive the fault seed from the machine seed, decorrelated
            // so the two streams never accidentally alias.
            cfg.faults.seed = o.seed * 0x9e3779b97f4a7c15ULL + 0x5eed;
        }
        cfg.reliable.enable = !o.noReliable;
        if (o.rto) {
            cfg.reliable.rto = o.rto;
            cfg.reliable.rtoMax = std::max(cfg.reliable.rtoMax, o.rto);
        }
        if (o.retries)
            cfg.reliable.maxRetries = o.retries;
        if (o.horizon)
            cfg.watchdog.horizon = o.horizon;
        if (!cfg.faults.crashes.empty() && o.app != "em3d") {
            // Crash rollback respawns bodies at a barrier epoch; only
            // epoch-restartable apps (App::supportsEpochRestart) can
            // resume there.
            tt_fatal("crash recovery requires an epoch-restartable "
                     "app (em3d)");
        }
    }

    if (o.checkpointEpoch) {
        cfg.recovery.checkpointEpoch = o.checkpointEpoch;
        cfg.recovery.checkpointFile = o.checkpointFile;
    }
    if (o.checkpointEpoch || !o.restoreFile.empty())
        cfg.recovery.fingerprint = configFingerprint(configKey(o));

    if (o.table2)
        printTable2(std::cout, cfg);

    if (o.campaign) {
        CampaignConfig cc;
        cc.base = cfg;
        cc.runs = o.campaign;
        cc.app = o.app;
        cc.dataset = parseDataSet(o.dataset);
        cc.scale = o.scale;
        cc.remoteFrac = o.remotePct / 100.0;
        cc.shardIndex = o.shardIndex;
        cc.shardCount = o.shardCount;
        if (o.systems.empty()) {
            cc.systems = {"dirnnb", "stache", "migratory"};
            if (o.app == "em3d")
                cc.systems.push_back("update");
        } else {
            std::size_t pos = 0;
            while (pos <= o.systems.size()) {
                std::size_t end = o.systems.find(',', pos);
                if (end == std::string::npos)
                    end = o.systems.size();
                const std::string s = o.systems.substr(pos, end - pos);
                if (!s.empty())
                    cc.systems.push_back(s);
                pos = end + 1;
            }
            if (cc.systems.empty())
                tt_fatal("--systems: no systems named");
        }
        for (const auto& s : cc.systems)
            if (s == "update" && o.app != "em3d")
                tt_fatal("campaign system 'update' supports only "
                         "--app=em3d");

        std::printf("campaign: %d seeds x %zu systems, faults=%s%s",
                    cc.runs, cc.systems.size(), o.faults.c_str(),
                    o.noReliable ? " (reliable transport OFF)" : "");
        if (cc.shardCount > 1)
            std::printf(" [shard %d/%d]", cc.shardIndex,
                        cc.shardCount);
        std::printf("\n");
        CampaignReport rep = runCampaign(cc);
        rep.faultSpec = o.faults;
        std::printf(
            "campaign: %zu runs: ok=%llu violation=%llu watchdog=%llu "
            "panic=%llu error=%llu unrecoverable=%llu\n",
            rep.runs.size(),
            static_cast<unsigned long long>(rep.countOutcome("ok")),
            static_cast<unsigned long long>(
                rep.countOutcome("violation")),
            static_cast<unsigned long long>(
                rep.countOutcome("watchdog")),
            static_cast<unsigned long long>(rep.countOutcome("panic")),
            static_cast<unsigned long long>(rep.countOutcome("error")),
            static_cast<unsigned long long>(
                rep.countOutcome("unrecoverable")));
        if (!o.campaignJson.empty()) {
            if (!rep.writeJsonFile(o.campaignJson)) {
                std::fprintf(stderr, "cannot write %s\n",
                             o.campaignJson.c_str());
                return 1;
            }
            std::printf("campaign json  : %s\n", o.campaignJson.c_str());
        }
        if (rep.countOutcome("violation"))
            return 3;
        if (rep.countOutcome("unrecoverable"))
            return 5;
        return rep.allOk() ? 0 : 4;
    }

    TargetMachine target;
    std::unique_ptr<BenchApp> app;
    const DataSet ds = parseDataSet(o.dataset);

    if (o.system == "dirnnb") {
        target = buildDirNNB(cfg);
    } else if (o.system == "stache") {
        target = buildTyphoonStache(cfg);
    } else if (o.system == "migratory") {
        target = buildTyphoonMigratory(cfg);
    } else if (o.system == "update") {
        if (o.app != "em3d")
            tt_fatal("--system=update supports only --app=em3d");
        target = buildTyphoonEm3dUpdate(cfg);
    } else {
        tt_fatal("unknown system: ", o.system);
    }

    if (o.system == "update") {
        Em3dApp::Params p =
            em3dParams(ds, o.remotePct / 100.0, o.scale);
        app = std::make_unique<Em3dApp>(p, Em3dApp::Mode::Update,
                                        target.em3d);
    } else if (o.app == "em3d") {
        app = std::make_unique<Em3dApp>(
            em3dParams(ds, o.remotePct / 100.0, o.scale));
    } else {
        app = makeWorkload(o.app, ds, o.scale);
    }

    std::printf("ttsim: %s on %s, %d nodes, %d KB cache, %dB blocks, "
                "dataset=%s scale=1/%d\n",
                app->name().c_str(),
                target.m().memsys().name().c_str(), o.nodes,
                o.cacheKb, o.blockSize, o.dataset.c_str(), o.scale);

    // --restore: the snapshot must outlive the run (the plan's
    // applyState lambda reads it at the restored tick).
    Snapshot snap;
    Machine::RestartPlan plan;
    bool restored = false;
    if (!o.restoreFile.empty()) {
        if (!app->supportsEpochRestart())
            tt_fatal("--restore requires an epoch-restartable app "
                     "(em3d)");
        snap = loadSnapshot(o.restoreFile);
        if (snap.fingerprint != cfg.recovery.fingerprint) {
            tt_fatal("--restore: '", o.restoreFile,
                     "' was checkpointed under a different "
                     "configuration; rerun with the checkpointing "
                     "run's flags");
        }
        MemorySystem* ms =
            target.typhoon
                ? static_cast<MemorySystem*>(target.typhoon.get())
                : static_cast<MemorySystem*>(target.dir.get());
        plan = restorePlan(snap, *target.machine, *target.network,
                           *ms, target.checker.get());
        restored = true;
        std::printf("restore        : %s (epoch %llu, tick %llu)\n",
                    o.restoreFile.c_str(),
                    static_cast<unsigned long long>(snap.episodes),
                    static_cast<unsigned long long>(snap.tick));
    }
    if (o.checkpointEpoch && !app->supportsEpochRestart())
        tt_fatal("--checkpoint requires an epoch-restartable app "
                 "(em3d)");

    if (target.telemetry)
        target.telemetry->runBegin();
    const auto t0 = std::chrono::steady_clock::now();
    RunResult r;
    try {
        r = restored ? target.run(*app, plan) : target.run(*app);
    } catch (const UnrecoverableCrash& e) {
        std::fprintf(stderr, "ttsim: %s\n", e.what());
        if (target.recovery)
            target.recovery->finalizeStats();
        if (!o.statsJson.empty() &&
            target.m().stats().writeJsonFile(o.statsJson))
            std::printf("stats json     : %s\n", o.statsJson.c_str());
        return 5;
    } catch (const WatchdogTimeout& e) {
        // The on-trip hook already dumped the flight-recorder tail.
        std::fprintf(stderr, "ttsim: %s\n", e.what());
        if (!o.statsJson.empty() &&
            target.m().stats().writeJsonFile(o.statsJson))
            std::printf("stats json     : %s\n", o.statsJson.c_str());
        return 4;
    }
    const auto t1 = std::chrono::steady_clock::now();
    if (target.telemetry)
        target.telemetry->runEnd();
    const double wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    std::printf("execution time : %llu cycles\n",
                static_cast<unsigned long long>(r.execTime));
    std::printf("events         : %llu\n",
                static_cast<unsigned long long>(r.events));
    std::printf("work units     : %llu (%.2f cycles/unit/node)\n",
                static_cast<unsigned long long>(app->workUnits()),
                static_cast<double>(r.execTime) * o.nodes /
                    static_cast<double>(app->workUnits()));
    std::printf("checksum       : %.17g\n", app->checksum());
    std::printf("net messages   : %llu (%llu words)\n",
                static_cast<unsigned long long>(
                    target.m().stats().get("net.messages")),
                static_cast<unsigned long long>(
                    target.m().stats().get("net.words")));

    if (target.recovery) {
        target.recovery->finalizeStats();
        std::printf(
            "recovery       : %llu crash(es) injected, %llu "
            "recovery(ies) completed\n",
            static_cast<unsigned long long>(
                target.recovery->crashesInjected()),
            static_cast<unsigned long long>(
                target.recovery->recoveriesDone()));
    }
    if (target.checkpoint) {
        if (target.checkpoint->written())
            std::printf("checkpoint     : %s\n",
                        target.checkpoint->path().c_str());
        else
            std::fprintf(stderr,
                         "ttsim: warning: the run finished before "
                         "barrier epoch %llu; no checkpoint written\n",
                         static_cast<unsigned long long>(
                             o.checkpointEpoch));
    }

    if (target.obs) {
        target.obs->finalize();
        if (!o.traceFile.empty())
            std::printf("trace          : %s (%llu records)\n",
                        o.traceFile.c_str(),
                        static_cast<unsigned long long>(
                            target.obs->recordCount()));
        if (o.analyze && target.obs->sharing()) {
            const SharingAnalyzer& sa = *target.obs->sharing();
            sa.writeReport(std::cout);
            if (!o.analyzeJson.empty()) {
                if (!sa.writeJsonFile(o.analyzeJson)) {
                    std::fprintf(stderr, "cannot write %s\n",
                                 o.analyzeJson.c_str());
                    return 1;
                }
                std::printf("analysis json  : %s\n",
                            o.analyzeJson.c_str());
            }
        }
        if (o.traceCritical && target.obs->txn()) {
            const TxnTracer& tx = *target.obs->txn();
            tx.writeReport(std::cout);
            if (!o.txnJson.empty()) {
                std::ofstream jf(o.txnJson);
                if (jf)
                    tx.writeJson(jf);
                if (!jf) {
                    std::fprintf(stderr, "cannot write %s\n",
                                 o.txnJson.c_str());
                    return 1;
                }
                std::printf("critical json  : %s\n", o.txnJson.c_str());
            }
        }
    }

    if (target.telemetry) {
        // Fold before any --stats-json write so obs.telemetry.* /
        // obs.host.* land in the dump.
        target.telemetry->finalize();
        target.telemetry->printSummary(std::cout);
        if (!o.telemetryJson.empty()) {
            if (!target.telemetry->writeReportFile(o.telemetryJson)) {
                std::fprintf(stderr, "cannot write %s\n",
                             o.telemetryJson.c_str());
                return 1;
            }
            std::printf("telemetry json : %s\n",
                        o.telemetryJson.c_str());
        }
    }

    if (o.stats) {
        std::printf("\n--- statistics ---\n");
        target.m().stats().dump(std::cout);
    }

    if (!o.statsJson.empty()) {
        if (!target.m().stats().writeJsonFile(o.statsJson)) {
            std::fprintf(stderr, "cannot write %s\n",
                         o.statsJson.c_str());
            return 1;
        }
        std::printf("stats json     : %s\n", o.statsJson.c_str());
    }

    bool checkFailed = false;
    if (target.checker) {
        target.checker->finalize();
        std::fputs(target.checker->report().c_str(), stdout);
        checkFailed = !target.checker->violations().empty();
        if (checkFailed && target.obs) {
            std::fputs("--- flight recorder tail ---\n", stderr);
            target.obs->dumpTail(std::cerr);
        }
    }

    if (!o.benchJson.empty()) {
        BenchReport rep;
        rep.nodes = o.nodes;
        rep.scale = o.scale;
        BenchCase c;
        c.system = o.system;
        c.app = app->name();
        c.threads = o.threads;
        c.dataset = o.dataset;
        c.cycles = r.execTime;
        c.events = r.events;
        c.wallMs = wallMs;
        c.checksum = app->checksum();
        rep.cases.push_back(std::move(c));
        if (!rep.writeJsonFile(o.benchJson)) {
            std::fprintf(stderr, "cannot write %s\n",
                         o.benchJson.c_str());
            return 1;
        }
        std::printf("bench report   : %s (%.0f events/sec)\n",
                    o.benchJson.c_str(), rep.eventsPerSec());
    }
    return checkFailed ? 3 : 0;
}
